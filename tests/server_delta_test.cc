// Serving-layer tests of incremental delta maintenance (DESIGN.md §10):
// targeted cache invalidation keeps untouched entries warm across a
// version bump, the DELTA wire op applies and validates deltas, reads
// make progress while a delta is being planned, the bump-once version
// contract holds end to end, and the legacy rebuild path stays
// byte-identical to the incremental one.

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/natality.h"
#include "datagen/random_db.h"
#include "server/loopback.h"
#include "server/protocol.h"
#include "server/service.h"
#include "tests/test_util.h"

namespace xplain {
namespace server {
namespace {

using ::xplain::testing::UnwrapOrDie;

Database MakeRandom() {
  datagen::RandomDbOptions options;
  options.seed = 77;
  options.schema = datagen::DbTemplate::kDblpLike;
  options.size = 12;
  options.domain = 3;
  return UnwrapOrDie(datagen::GenerateRandomDb(options));
}

Database MakeNatality(size_t rows) {
  datagen::NatalityOptions options;
  options.num_rows = rows;
  options.seed = 2010;
  return UnwrapOrDie(datagen::GenerateNatality(options));
}

/// TOPK form of the paper's Q_Race: both filters are Asian-only, so a
/// delta over White rows never touches this entry's read set.
std::string QRaceLine(int id) {
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"TOPK\",\"question\":{\"subqueries\":["
         "{\"name\":\"q1\",\"agg\":\"count(*)\",\"where\":\"Birth.ap = "
         "'good' AND Birth.race = 'Asian'\"},"
         "{\"name\":\"q2\",\"agg\":\"count(*)\",\"where\":\"Birth.ap = "
         "'poor' AND Birth.race = 'Asian'\"}],"
         "\"expr\":\"q1 / q2\",\"direction\":\"high\"},"
         "\"attrs\":[\"marital\",\"tobacco\",\"education\"],"
         "\"options\":{\"top_k\":3}}";
}

/// TOPK form of Q_Marital: every Birth row is married or unmarried, so
/// any delta over Birth touches this entry's read set.
std::string QMaritalLine(int id) {
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"TOPK\",\"question\":{\"subqueries\":["
         "{\"name\":\"q1\",\"agg\":\"count(*)\",\"where\":\"Birth.ap = "
         "'good' AND Birth.marital = 'married'\"},"
         "{\"name\":\"q2\",\"agg\":\"count(*)\",\"where\":\"Birth.ap = "
         "'poor' AND Birth.marital = 'married'\"},"
         "{\"name\":\"q3\",\"agg\":\"count(*)\",\"where\":\"Birth.ap = "
         "'good' AND Birth.marital = 'unmarried'\"},"
         "{\"name\":\"q4\",\"agg\":\"count(*)\",\"where\":\"Birth.ap = "
         "'poor' AND Birth.marital = 'unmarried'\"}],"
         "\"expr\":\"(q1 / q2) / (q3 / q4)\",\"direction\":\"high\"},"
         "\"attrs\":[\"tobacco\",\"education\",\"prenatal\"],"
         "\"options\":{\"top_k\":3}}";
}

/// The same line answered by a direct engine on `db` through the same
/// payload code — the byte-identity reference.
std::string DirectResponse(const Database& db, const ExplainEngine& engine,
                           const std::string& line) {
  Request request = UnwrapOrDie(ParseRequest(line));
  UserQuestion question = UnwrapOrDie(BuildQuestion(db, request));
  auto report = engine.Explain(question, request.attrs, request.options);
  if (!report.ok()) {
    return MakeResponse(request.id, ErrorPayload(report.status()));
  }
  return MakeResponse(request.id, ReportPayload(db, *report, request.op));
}

/// A simple EXPLAIN line over the random kDblpLike instance.
std::string RandomDbLine(int id, int x) {
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"EXPLAIN\",\"question\":{\"subqueries\":["
         "{\"name\":\"q1\",\"agg\":\"count(*)\",\"where\":\"\"},"
         "{\"name\":\"q2\",\"agg\":\"count(*)\",\"where\":\"A.va = " +
         std::to_string(x) +
         "\"}],\"expr\":\"q1 - q2\",\"direction\":\"high\"},"
         "\"attrs\":[\"A.va\",\"P.vp\"],\"options\":{\"top_k\":3}}";
}

TEST(ServerDeltaTest, TargetedInvalidationKeepsUntouchedEntries) {
  auto service = UnwrapOrDie(XplaindService::Create(MakeNatality(4000)));
  LoopbackTransport transport(service.get());
  const uint64_t version_before = service->db_version();

  // Warm both entries (miss then hit each).
  const std::string race_warm = transport.Call(QRaceLine(1));
  ASSERT_NE(race_warm.find("\"ok\":true"), std::string::npos) << race_warm;
  EXPECT_EQ(transport.Call(QRaceLine(1)), race_warm);
  const std::string marital_warm = transport.Call(QMaritalLine(2));
  ASSERT_NE(marital_warm.find("\"ok\":true"), std::string::npos)
      << marital_warm;
  EXPECT_EQ(transport.Call(QMaritalLine(2)), marital_warm);
  XplaindService::Stats stats = service->GetStats();
  EXPECT_EQ(stats.cache_hits, 2);

  // Delete every White row through the wire op. QRace reads only Asian
  // rows, so its entry must survive the version bump; QMarital reads
  // every row, so its entry must be targeted-invalidated.
  const std::string delta_response = transport.Call(
      "{\"id\":3,\"op\":\"DELTA\",\"relation\":\"Birth\","
      "\"where\":\"race = 'White'\"}");
  ASSERT_NE(delta_response.find("\"ok\":true"), std::string::npos)
      << delta_response;
  EXPECT_NE(delta_response.find("\"op\":\"DELTA\""), std::string::npos);
  EXPECT_NE(delta_response.find("\"removed\":"), std::string::npos);
  EXPECT_EQ(service->db_version(), version_before + 1);

  stats = service->GetStats();
  EXPECT_GE(stats.cache.rekeyed, 1) << "QRace entry should survive";
  EXPECT_GE(stats.cache.targeted_invalidations, 1)
      << "QMarital entry should be dropped";
  EXPECT_EQ(stats.cache.full_invalidations, 0);

  // The surviving QRace entry serves as a hit under the new version...
  const std::string race_after = transport.Call(QRaceLine(1));
  XplaindService::Stats after = service->GetStats();
  EXPECT_EQ(after.cache_hits, stats.cache_hits + 1);
  // ...and is byte-identical to a from-scratch engine on an identically
  // mutated database (the survival soundness contract).
  Database reference = MakeNatality(4000);
  DeltaSet reference_delta = reference.EmptyDelta();
  const int birth = *reference.RelationIndex("Birth");
  const DnfPredicate white =
      UnwrapOrDie(ParseDnfPredicate(reference, "race = 'White'"));
  for (size_t row = 0; row < reference.relation(birth).NumRows(); ++row) {
    if (white.disjuncts()[0].EvalOnRelation(reference, birth, row)) {
      reference_delta[static_cast<size_t>(birth)].Set(row);
    }
  }
  reference = reference.ApplyDelta(reference_delta);
  reference.SemijoinReduce();
  ExplainEngine reference_engine =
      UnwrapOrDie(ExplainEngine::Create(&reference));
  EXPECT_EQ(race_after,
            DirectResponse(reference, reference_engine, QRaceLine(1)));
  EXPECT_EQ(race_after, race_warm)
      << "Asian-only answer must not change when White rows vanish";

  // The invalidated QMarital entry recomputes — a miss, but correct.
  const std::string marital_after = transport.Call(QMaritalLine(2));
  EXPECT_EQ(service->GetStats().cache_hits, after.cache_hits);
  EXPECT_NE(marital_after, marital_warm);
  EXPECT_EQ(marital_after,
            DirectResponse(reference, reference_engine, QMaritalLine(2)));
}

TEST(ServerDeltaTest, DeltaOpValidatesAndAppliesRowLists) {
  auto service = UnwrapOrDie(XplaindService::Create(MakeRandom()));
  LoopbackTransport transport(service.get());
  const uint64_t version_before = service->db_version();

  // Unknown relation.
  std::string response = transport.Call(
      "{\"id\":1,\"op\":\"DELTA\",\"relation\":\"Nope\",\"rows\":[0]}");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("NotFound"), std::string::npos) << response;

  // Neither rows nor where.
  response =
      transport.Call("{\"id\":2,\"op\":\"DELTA\",\"relation\":\"C\"}");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;

  // Out-of-range row position.
  response = transport.Call(
      "{\"id\":3,\"op\":\"DELTA\",\"relation\":\"C\",\"rows\":[999999]}");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;

  // A where clause referencing a different relation than the target.
  response = transport.Call(
      "{\"id\":4,\"op\":\"DELTA\",\"relation\":\"A\","
      "\"where\":\"P.vp = 0\"}");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;

  // None of the failures touched the database.
  EXPECT_EQ(service->db_version(), version_before);
  EXPECT_EQ(service->GetStats().errors, 4);

  // A valid row-list delta applies and reports what it removed.
  response = transport.Call(
      "{\"id\":5,\"op\":\"DELTA\",\"relation\":\"C\",\"rows\":[0]}");
  ASSERT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  EXPECT_NE(response.find("\"db_version\":" +
                          std::to_string(version_before + 1)),
            std::string::npos)
      << response;
  EXPECT_EQ(service->db_version(), version_before + 1);
}

TEST(ServerDeltaTest, EmptyDeltaDoesNotBumpOrInvalidate) {
  auto service = UnwrapOrDie(XplaindService::Create(MakeRandom()));
  LoopbackTransport transport(service.get());
  const std::string warm = transport.Call(RandomDbLine(1, 0));
  ASSERT_NE(warm.find("\"ok\":true"), std::string::npos) << warm;
  const uint64_t version_before = service->db_version();

  // A where clause matching nothing removes nothing: no version bump.
  const std::string response = transport.Call(
      "{\"id\":2,\"op\":\"DELTA\",\"relation\":\"A\","
      "\"where\":\"A.va = 999\"}");
  ASSERT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  EXPECT_NE(response.find("\"removed\":0"), std::string::npos) << response;
  EXPECT_EQ(service->db_version(), version_before);

  // The cached entry still matches its version key: a hit, not a miss.
  const int64_t hits_before = service->GetStats().cache_hits;
  EXPECT_EQ(transport.Call(RandomDbLine(1, 0)), warm);
  EXPECT_EQ(service->GetStats().cache_hits, hits_before + 1);

  // The programmatic API agrees.
  XPLAIN_EXPECT_OK(service->ApplyDelta(service->db().EmptyDelta()));
  EXPECT_EQ(service->db_version(), version_before);
}

TEST(ServerDeltaTest, OneDeltaBumpsVersionExactlyOnce) {
  // Regression: ApplyDelta used to bump twice per delta (once in
  // Database::ApplyDelta, once in the follow-up SemijoinReduce).
  for (const bool incremental : {true, false}) {
    ServiceOptions options;
    options.incremental_deltas = incremental;
    auto service =
        UnwrapOrDie(XplaindService::Create(MakeRandom(), options));
    const uint64_t before = service->db_version();
    DeltaSet delta = service->db().EmptyDelta();
    const int c_index = *service->db().RelationIndex("C");
    delta[static_cast<size_t>(c_index)].Set(0);
    XPLAIN_EXPECT_OK(service->ApplyDelta(delta));
    EXPECT_EQ(service->db_version(), before + 1)
        << (incremental ? "incremental" : "legacy");
  }
}

TEST(ServerDeltaTest, ReadsProgressWhileDeltaIsPlanned) {
  // The delta-plan hook runs after the read-only planning phase, holding
  // only the delta mutex. An EXPLAIN submitted at that moment must
  // complete before the delta commits — proving ApplyDelta no longer
  // holds the writer lock across the whole rebuild.
  std::promise<void> planning_started;
  std::promise<void> explain_finished;
  std::shared_future<void> explain_finished_f =
      explain_finished.get_future().share();
  ServiceOptions options;
  options.delta_plan_hook = [&planning_started, explain_finished_f] {
    planning_started.set_value();
    explain_finished_f.wait();
  };
  auto service =
      UnwrapOrDie(XplaindService::Create(MakeNatality(2000), options));
  LoopbackTransport transport(service.get());

  std::thread delta_thread([&service] {
    DeltaSet delta = service->db().EmptyDelta();
    const int birth = *service->db().RelationIndex("Birth");
    for (size_t row = 0; row < 200; ++row) {
      delta[static_cast<size_t>(birth)].Set(row);
    }
    XPLAIN_EXPECT_OK(service->ApplyDelta(delta));
  });

  planning_started.get_future().wait();
  // The delta is mid-flight (parked in the hook). A fresh read must
  // finish — on the pre-delta database, at the pre-delta version.
  const uint64_t version_during = service->db_version();
  std::future<std::string> read = std::async(std::launch::async, [&] {
    return transport.Call(QRaceLine(7));
  });
  ASSERT_EQ(read.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "EXPLAIN deadlocked behind an in-flight delta";
  const std::string response = read.get();
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;

  explain_finished.set_value();
  delta_thread.join();
  EXPECT_EQ(service->db_version(), version_during + 1);
}

TEST(ServerDeltaTest, ConcurrentReadersDuringRepeatedDeltas) {
  // TSan stress: readers race a sequence of incremental deltas. Every
  // response must be well-formed, and the final state must match a
  // from-scratch engine on an identically mutated database.
  ServiceOptions options;
  options.num_workers = 4;
  auto service =
      UnwrapOrDie(XplaindService::Create(MakeNatality(2000), options));
  LoopbackTransport transport(service.get());

  std::atomic<bool> stop{false};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&transport, &stop, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string line =
            (t + i) % 2 == 0 ? QRaceLine(100 + t) : QMaritalLine(200 + t);
        const std::string response = transport.Call(line);
        EXPECT_NE(response.find("\"id\":"), std::string::npos) << response;
        ++i;
      }
    });
  }

  // Each delta removes the first 20 rows of the *current* shape (row
  // positions shift as earlier deltas compact), so five rounds remove
  // the first 100 original rows.
  constexpr int kDeltas = 5;
  for (int d = 0; d < kDeltas; ++d) {
    DeltaSet delta = service->db().EmptyDelta();
    const int birth = *service->db().RelationIndex("Birth");
    for (size_t row = 0; row < 20; ++row) {
      delta[static_cast<size_t>(birth)].Set(row);
    }
    XPLAIN_EXPECT_OK(service->ApplyDelta(delta));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  // The maintained state answers like a fresh engine on the same rows.
  Database reference = MakeNatality(2000);
  DeltaSet reference_delta = reference.EmptyDelta();
  const int birth = *reference.RelationIndex("Birth");
  for (size_t row = 0; row < kDeltas * 20; ++row) {
    reference_delta[static_cast<size_t>(birth)].Set(row);
  }
  reference = reference.ApplyDelta(reference_delta);
  reference.SemijoinReduce();
  ExplainEngine reference_engine =
      UnwrapOrDie(ExplainEngine::Create(&reference));
  EXPECT_EQ(transport.Call(QRaceLine(1)),
            DirectResponse(reference, reference_engine, QRaceLine(1)));
  EXPECT_EQ(transport.Call(QMaritalLine(2)),
            DirectResponse(reference, reference_engine, QMaritalLine(2)));
}

TEST(ServerDeltaTest, LegacyRebuildPathMatchesIncremental) {
  ServiceOptions legacy_options;
  legacy_options.incremental_deltas = false;
  auto legacy =
      UnwrapOrDie(XplaindService::Create(MakeRandom(), legacy_options));
  auto incremental = UnwrapOrDie(XplaindService::Create(MakeRandom()));
  LoopbackTransport legacy_transport(legacy.get());
  LoopbackTransport incremental_transport(incremental.get());

  const std::string line = RandomDbLine(9, 1);
  EXPECT_EQ(legacy_transport.Call(line), incremental_transport.Call(line));

  const std::string delta_line =
      "{\"id\":10,\"op\":\"DELTA\",\"relation\":\"C\",\"rows\":[0,3]}";
  const std::string legacy_delta = legacy_transport.Call(delta_line);
  const std::string incremental_delta =
      incremental_transport.Call(delta_line);
  ASSERT_NE(legacy_delta.find("\"ok\":true"), std::string::npos)
      << legacy_delta;
  EXPECT_EQ(legacy_delta, incremental_delta);

  // Same version, same answers, byte for byte.
  EXPECT_EQ(legacy->db_version(), incremental->db_version());
  EXPECT_EQ(legacy_transport.Call(line), incremental_transport.Call(line));

  // The legacy path wiped; the incremental path did not.
  EXPECT_GE(legacy->GetStats().cache.full_invalidations, 1);
  EXPECT_EQ(incremental->GetStats().cache.full_invalidations, 0);
}

}  // namespace
}  // namespace server
}  // namespace xplain
