#include "relational/value.h"

#include <unordered_set>

#include "gtest/gtest.h"

namespace xplain {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
}

TEST(ValueTest, AsNumericWidens) {
  EXPECT_DOUBLE_EQ(Value::Int(7).AsNumeric(), 7.0);
  EXPECT_DOUBLE_EQ(Value::Real(7.5).AsNumeric(), 7.5);
}

TEST(ValueTest, NullEqualsNullAndSortsFirst) {
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Null().Compare(Value::Str("")), 0);
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Real(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Real(3.5)), 0);
  EXPECT_GT(Value::Real(3.5).Compare(Value::Int(3)), 0);
  EXPECT_LT(Value::Real(-1e30).Compare(Value::Int(0)), 0);
  EXPECT_GT(Value::Real(1e30).Compare(Value::Int(1)), 0);
}

TEST(ValueTest, LargeIntegersCompareExactly) {
  // 2^62 + 1 is not representable as a double; exact comparison must see
  // the difference.
  int64_t big = (int64_t{1} << 62) + 1;
  EXPECT_GT(Value::Int(big).Compare(Value::Real(static_cast<double>(
                (int64_t{1} << 62)))),
            0);
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_EQ(Value::Str("x").Compare(Value::Str("x")), 0);
}

TEST(ValueTest, HashConsistentWithCrossTypeEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Real(5.0).Hash());
  EXPECT_TRUE(Value::Int(5).Equals(Value::Real(5.0)));
}

TEST(ValueTest, HashDistinguishesTypicalValues) {
  std::unordered_set<Value> set;
  set.insert(Value::Int(1));
  set.insert(Value::Int(2));
  set.insert(Value::Str("1"));
  set.insert(Value::Null());
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.count(Value::Int(1)));
  EXPECT_TRUE(set.count(Value::Null()));
  EXPECT_FALSE(set.count(Value::Int(3)));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Str("x").ToString(), "'x'");
  EXPECT_EQ(Value::Str("x").ToUnquotedString(), "x");
}

TEST(ValueTest, ParseInt) {
  auto v = Value::Parse("123", DataType::kInt64);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 123);
  EXPECT_FALSE(Value::Parse("12x", DataType::kInt64).ok());
}

TEST(ValueTest, ParseDouble) {
  auto v = Value::Parse("2.5e1", DataType::kDouble);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 25.0);
  EXPECT_FALSE(Value::Parse("abc", DataType::kDouble).ok());
}

TEST(ValueTest, ParseBool) {
  EXPECT_EQ(Value::Parse("true", DataType::kBool)->AsBool(), true);
  EXPECT_EQ(Value::Parse("0", DataType::kBool)->AsBool(), false);
  EXPECT_FALSE(Value::Parse("maybe", DataType::kBool).ok());
}

TEST(ValueTest, ParseEmptyAndNullBecomeNull) {
  EXPECT_TRUE(Value::Parse("", DataType::kInt64)->is_null());
  EXPECT_TRUE(Value::Parse("NULL", DataType::kString)->is_null());
}

TEST(ValueTest, ParseString) {
  EXPECT_EQ(Value::Parse("hello", DataType::kString)->AsString(), "hello");
}

TEST(TypeTest, Names) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "int64");
  EXPECT_EQ(*DataTypeFromString("INT"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromString("text"), DataType::kString);
  EXPECT_FALSE(DataTypeFromString("blob").ok());
}

TEST(TypeTest, Assignability) {
  EXPECT_TRUE(IsAssignable(DataType::kDouble, DataType::kInt64));
  EXPECT_FALSE(IsAssignable(DataType::kInt64, DataType::kDouble));
  EXPECT_TRUE(IsAssignable(DataType::kString, DataType::kNull));
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_FALSE(IsNumeric(DataType::kString));
}

}  // namespace
}  // namespace xplain
