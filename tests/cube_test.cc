#include "relational/cube.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::Pred;
using ::xplain::testing::UnwrapOrDie;

class CubeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildRunningExample();
    universal_ = std::make_unique<UniversalRelation>(
        UnwrapOrDie(UniversalRelation::Build(db_)));
    name_ = *db_.ResolveColumn("Author.name");
    year_ = *db_.ResolveColumn("Publication.year");
  }

  Database db_;
  std::unique_ptr<UniversalRelation> universal_;
  ColumnRef name_, year_;
};

TEST_F(CubeTest, Example41CountCube) {
  // The paper's Example 4.1: cube over (name, year) with count(*).
  DataCube cube = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_, year_}, AggregateSpec::CountStar(), nullptr));
  EXPECT_EQ(cube.NumCells(), 11u);
  auto cell = [](const char* n, int64_t y) {
    Tuple t(2);
    t[0] = n == nullptr ? Value::Null() : Value::Str(n);
    t[1] = y == 0 ? Value::Null() : Value::Int(y);
    return t;
  };
  EXPECT_DOUBLE_EQ(cube.CellValue(cell("JG", 2001)), 1);
  EXPECT_DOUBLE_EQ(cube.CellValue(cell("JG", 2011)), 1);
  EXPECT_DOUBLE_EQ(cube.CellValue(cell("RR", 2001)), 2);
  EXPECT_DOUBLE_EQ(cube.CellValue(cell("CM", 2001)), 1);
  EXPECT_DOUBLE_EQ(cube.CellValue(cell("CM", 2011)), 1);
  EXPECT_DOUBLE_EQ(cube.CellValue(cell("JG", 0)), 2);
  EXPECT_DOUBLE_EQ(cube.CellValue(cell("RR", 0)), 2);
  EXPECT_DOUBLE_EQ(cube.CellValue(cell("CM", 0)), 2);
  EXPECT_DOUBLE_EQ(cube.CellValue(cell(nullptr, 2001)), 4);
  EXPECT_DOUBLE_EQ(cube.CellValue(cell(nullptr, 2011)), 2);
  EXPECT_DOUBLE_EQ(cube.CellValue(cell(nullptr, 0)), 6);
  EXPECT_DOUBLE_EQ(cube.GrandTotal(), 6);
  // Missing cells read as 0.
  EXPECT_DOUBLE_EQ(cube.CellValue(cell("RR", 2011)), 0);
}

TEST_F(CubeTest, FilteredCube) {
  DnfPredicate sigmod = Pred(db_, "Publication.venue = 'SIGMOD'");
  DataCube cube = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_}, AggregateSpec::CountStar(), &sigmod));
  EXPECT_DOUBLE_EQ(cube.CellValue({Value::Str("RR")}), 2);
  EXPECT_DOUBLE_EQ(cube.CellValue({Value::Str("JG")}), 1);
  EXPECT_DOUBLE_EQ(cube.GrandTotal(), 4);
}

TEST_F(CubeTest, CountDistinctRollsUpExactly) {
  ColumnRef pubid = *db_.ResolveColumn("Publication.pubid");
  DataCube cube = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_}, AggregateSpec::CountDistinct(pubid), nullptr));
  // Each author wrote 2 distinct papers; total distinct papers is 3, NOT
  // the sum 6 -- distinct rollup must not double count.
  EXPECT_DOUBLE_EQ(cube.CellValue({Value::Str("JG")}), 2);
  EXPECT_DOUBLE_EQ(cube.GrandTotal(), 3);
}

TEST_F(CubeTest, SumCube) {
  DataCube cube = UnwrapOrDie(
      DataCube::Compute(*universal_, {name_},
                        AggregateSpec::Sum(year_), nullptr));
  EXPECT_DOUBLE_EQ(cube.CellValue({Value::Str("JG")}), 2001 + 2011);
}

TEST_F(CubeTest, AttributeCapEnforced) {
  CubeOptions options;
  options.max_attributes = 1;
  EXPECT_FALSE(DataCube::Compute(*universal_, {name_, year_},
                                 AggregateSpec::CountStar(), nullptr, options)
                   .ok());
  EXPECT_FALSE(DataCube::Compute(*universal_, {},
                                 AggregateSpec::CountStar(), nullptr)
                   .ok());
}

TEST_F(CubeTest, FullOuterJoinFillsZeros) {
  DnfPredicate y2001 = Pred(db_, "Publication.year = 2001");
  DnfPredicate y2011 = Pred(db_, "Publication.year = 2011");
  DataCube c1 = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_}, AggregateSpec::CountStar(), &y2001));
  DataCube c2 = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_}, AggregateSpec::CountStar(), &y2011));
  CubeJoinResult joined = UnwrapOrDie(FullOuterJoinCubes({&c1, &c2}));
  // Union of cells; JG appears in both, RR only in 2001, CM in both.
  ASSERT_EQ(joined.NumRows(), 4u);  // JG, RR, CM, ALL
  for (size_t row = 0; row < joined.NumRows(); ++row) {
    if (joined.coords[row][0].is_null()) continue;
    const std::string& who = joined.coords[row][0].AsString();
    if (who == "RR") {
      EXPECT_DOUBLE_EQ(joined.values[0][row], 2);
      EXPECT_DOUBLE_EQ(joined.values[1][row], 0);  // missing cell -> 0
    }
  }
}

TEST_F(CubeTest, FullOuterJoinValidatesInputs) {
  DataCube c1 = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_}, AggregateSpec::CountStar(), nullptr));
  DataCube c2 = UnwrapOrDie(DataCube::Compute(
      *universal_, {year_}, AggregateSpec::CountStar(), nullptr));
  EXPECT_FALSE(FullOuterJoinCubes({&c1, &c2}).ok());
  EXPECT_FALSE(FullOuterJoinCubes({}).ok());
  EXPECT_FALSE(FullOuterJoinCubes({&c1, nullptr}).ok());
}

TEST_F(CubeTest, FullOuterJoinEmptyOperandListIsInvalidArgument) {
  const auto joined = FullOuterJoinCubes({});
  ASSERT_FALSE(joined.ok());
  EXPECT_EQ(joined.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(joined.status().message().find("at least one cube operand"),
            std::string::npos);
}

TEST_F(CubeTest, FullOuterJoinNullOperandNamesItsIndex) {
  DataCube c1 = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_}, AggregateSpec::CountStar(), nullptr));
  const auto joined = FullOuterJoinCubes({&c1, nullptr});
  ASSERT_FALSE(joined.ok());
  EXPECT_EQ(joined.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(joined.status().message().find("operand 1"), std::string::npos);
}

TEST_F(CubeTest, FullOuterJoinMismatchedAttributesNamesOffender) {
  DataCube c1 = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_}, AggregateSpec::CountStar(), nullptr));
  DataCube c2 = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_, year_}, AggregateSpec::CountStar(), nullptr));
  const auto joined = FullOuterJoinCubes({&c1, &c2});
  ASSERT_FALSE(joined.ok());
  EXPECT_EQ(joined.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(joined.status().message().find("operand 1"), std::string::npos);
  EXPECT_NE(joined.status().message().find("share one attribute list"),
            std::string::npos);
}

TEST_F(CubeTest, FullOuterJoinSingleCubeIsPassThrough) {
  // m = 1: the joined table is the cube's own cells in canonical order,
  // every one present.
  DataCube cube = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_}, AggregateSpec::CountStar(), nullptr));
  CubeJoinResult joined = UnwrapOrDie(FullOuterJoinCubes({&cube}));
  ASSERT_EQ(joined.NumRows(), cube.NumCells());
  ASSERT_EQ(joined.values.size(), 1u);
  ASSERT_EQ(joined.present.size(), 1u);
  for (size_t row = 0; row < joined.NumRows(); ++row) {
    EXPECT_DOUBLE_EQ(joined.values[0][row],
                     cube.CellValue(joined.coords[row]));
    EXPECT_EQ(joined.present[0][row], 1);
  }
}

TEST_F(CubeTest, FullOuterJoinWithEmptyCubeOperand) {
  // An empty cube (no cells at all) joins fine: it contributes no
  // coordinates, is absent (and 0) everywhere, and the union is the other
  // operand's cells.
  DataCube c1 = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_}, AggregateSpec::CountStar(), nullptr));
  DataCube empty = DataCube::FromCells({name_}, {});
  CubeJoinResult joined = UnwrapOrDie(FullOuterJoinCubes({&c1, &empty}));
  ASSERT_EQ(joined.NumRows(), c1.NumCells());
  for (size_t row = 0; row < joined.NumRows(); ++row) {
    EXPECT_EQ(joined.present[0][row], 1);
    EXPECT_EQ(joined.present[1][row], 0);
    EXPECT_DOUBLE_EQ(joined.values[1][row], 0.0);
  }
}

TEST_F(CubeTest, FullOuterJoinPresentBitsDistinguishMissingFromZero) {
  // A cell materialized with value 0 must stay distinguishable from a cell
  // the cube never produced — the cluster merge reconstructs per-shard
  // supports from exactly this bit (DESIGN.md §13).
  DataCube::CellMap zero_cells;
  Tuple jg(1);
  jg[0] = Value::Str("JG");
  zero_cells[jg] = 0.0;
  DataCube zero = DataCube::FromCells({name_}, std::move(zero_cells));
  DataCube::CellMap other_cells;
  Tuple rr(1);
  rr[0] = Value::Str("RR");
  other_cells[rr] = 3.0;
  DataCube other = DataCube::FromCells({name_}, std::move(other_cells));
  CubeJoinResult joined = UnwrapOrDie(FullOuterJoinCubes({&zero, &other}));
  ASSERT_EQ(joined.NumRows(), 2u);
  for (size_t row = 0; row < joined.NumRows(); ++row) {
    const bool is_jg = joined.coords[row] == jg;
    // Both rows carry a 0 in one cube; only JG's is a real cell there.
    EXPECT_EQ(joined.present[0][row], is_jg ? 1 : 0);
    EXPECT_EQ(joined.present[1][row], is_jg ? 0 : 1);
    EXPECT_DOUBLE_EQ(joined.values[0][row], 0.0);
    EXPECT_DOUBLE_EQ(joined.values[1][row], is_jg ? 0.0 : 3.0);
  }
}

TEST_F(CubeTest, ToStringIsDeterministic) {
  DataCube cube = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_}, AggregateSpec::CountStar(), nullptr));
  EXPECT_EQ(cube.ToString(db_), cube.ToString(db_));
  EXPECT_NE(cube.ToString(db_).find("Author.name"), std::string::npos);
}

}  // namespace
}  // namespace xplain
