#include "relational/query.h"

#include "gtest/gtest.h"
#include "relational/parser.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::Pred;
using ::xplain::testing::UnwrapOrDie;

NumericalQuery MakeComEduRatio(const Database& db) {
  // q1: SIGMOD papers by com authors; q2: by edu authors (count distinct
  // pubid) -- a miniature of the paper's Example 2.2.
  AggregateQuery q1, q2;
  q1.name = "q1";
  q1.agg = AggregateSpec::CountDistinct(*db.ResolveColumn("Publication.pubid"));
  q1.where = UnwrapOrDie(
      ParsePredicate(db, "Author.dom = 'com' AND Publication.venue = 'SIGMOD'"));
  q2.name = "q2";
  q2.agg = AggregateSpec::CountDistinct(*db.ResolveColumn("Publication.pubid"));
  q2.where = UnwrapOrDie(
      ParsePredicate(db, "Author.dom = 'edu' AND Publication.venue = 'SIGMOD'"));
  ExprPtr expr = UnwrapOrDie(ParseExpression("q1 / q2", {"q1", "q2"}));
  return UnwrapOrDie(
      NumericalQuery::Create({std::move(q1), std::move(q2)}, expr));
}

TEST(NumericalQueryTest, EvaluatesRunningExample) {
  Database db = BuildRunningExample();
  NumericalQuery q = MakeComEduRatio(db);
  // com SIGMOD pubs: P1 (RR), P3 (RR, CM) -> 2. edu SIGMOD pubs: P1 (JG) ->
  // 1.
  double value = UnwrapOrDie(q.Evaluate(db), "Evaluate");
  EXPECT_DOUBLE_EQ(value, 2.0);
}

TEST(NumericalQueryTest, EvaluateSubqueries) {
  Database db = BuildRunningExample();
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  NumericalQuery q = MakeComEduRatio(db);
  std::vector<double> values = q.EvaluateSubqueries(u);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 2.0);
  EXPECT_DOUBLE_EQ(values[1], 1.0);
  EXPECT_DOUBLE_EQ(q.Combine(values), 2.0);
}

TEST(NumericalQueryTest, LiveMaskChangesAnswer) {
  Database db = BuildRunningExample();
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  NumericalQuery q = MakeComEduRatio(db);
  // Keep only rows of publication P1.
  RowSet live(u.NumRows());
  ColumnRef pubid = *db.ResolveColumn("Publication.pubid");
  for (size_t i = 0; i < u.NumRows(); ++i) {
    if (u.ValueAt(i, pubid).AsString() == "P1") live.Set(i);
  }
  EXPECT_DOUBLE_EQ(q.EvaluateOnUniversal(u, &live), 1.0);
}

TEST(NumericalQueryTest, CreateRejectsUnboundVariables) {
  Database db = BuildRunningExample();
  AggregateQuery q1;
  q1.agg = AggregateSpec::CountStar();
  ExprPtr expr = UnwrapOrDie(ParseExpression("q1 / q2", {"q1", "q2"}));
  EXPECT_FALSE(NumericalQuery::Create({q1}, expr).ok());
  EXPECT_FALSE(NumericalQuery::Create({q1}, nullptr).ok());
}

TEST(NumericalQueryTest, ToStringListsSubqueries) {
  Database db = BuildRunningExample();
  NumericalQuery q = MakeComEduRatio(db);
  std::string text = q.ToString(db);
  EXPECT_NE(text.find("q1"), std::string::npos);
  EXPECT_NE(text.find("count(distinct Publication.pubid)"),
            std::string::npos);
}

TEST(UserQuestionTest, DirectionNames) {
  EXPECT_STREQ(DirectionToString(Direction::kHigh), "high");
  EXPECT_STREQ(DirectionToString(Direction::kLow), "low");
}

}  // namespace
}  // namespace xplain
