#include <string>

#include "gtest/gtest.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"

namespace xplain {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  XPLAIN_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  XPLAIN_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 41;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 41);
  EXPECT_EQ(r.status(), Status::OK());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*DoublePositive(21), 42);
  EXPECT_EQ(DoublePositive(0).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, ValueOrReturnsAlternative) {
  EXPECT_EQ(Result<int>(Status::NotFound("x")).ValueOr(7), 7);
  EXPECT_EQ(Result<int>(3).ValueOr(7), 3);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(EqualsIgnoreCase("SIGMOD", "sigmod"));
  EXPECT_FALSE(EqualsIgnoreCase("SIGMOD", "pods"));
}

}  // namespace
}  // namespace xplain
