#include "core/flatten.h"

#include "core/additivity.h"
#include "gtest/gtest.h"
#include "relational/universal.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::UnwrapOrDie;

TEST(FlattenTest, RunningExampleFanout2) {
  Database db = BuildRunningExample();
  FlattenResult flat = UnwrapOrDie(FlattenBackAndForth(db, /*fanout=*/2));

  // 2 author copies + 2 authored copies + the fact relation.
  EXPECT_EQ(flat.db.num_relations(), 5);
  EXPECT_EQ(flat.dimension_copies.size(), 2u);
  EXPECT_EQ(flat.member_copies.size(), 2u);
  EXPECT_EQ(flat.fact_relation, "Publication_flat");

  // No back-and-forth keys remain.
  EXPECT_FALSE(flat.db.HasBackAndForthKeys());
  XPLAIN_EXPECT_OK(flat.db.CheckReferentialIntegrity());

  // Every publication appears exactly once in the universal relation.
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(flat.db));
  EXPECT_EQ(u.NumRows(), 3u);
  int fact = *flat.db.RelationIndex("Publication_flat");
  EXPECT_TRUE(RelationIsUniqueCore(u, fact));

  // Hence count(*) is now intervention-additive (Corollary 3.6).
  AdditivityReport report =
      CheckAggregateAdditivity(u, AggregateSpec::CountStar());
  EXPECT_TRUE(report.additive) << report.reason;
}

TEST(FlattenTest, FactRowsCarryOriginalAttributes) {
  Database db = BuildRunningExample();
  FlattenResult flat = UnwrapOrDie(FlattenBackAndForth(db, 2));
  const Relation& fact = flat.db.RelationByName("Publication_flat");
  ASSERT_EQ(fact.NumRows(), 3u);
  // Schema: kad_1, kad_2, pubid, year, venue.
  EXPECT_EQ(fact.schema().num_attributes(), 5);
  EXPECT_EQ(fact.schema().attribute(0).name, "kad_1");
  EXPECT_EQ(fact.schema().attribute(2).name, "pubid");
  // Every publication in Figure 3 has exactly 2 authors: no dummy slots.
  for (size_t i = 0; i < fact.NumRows(); ++i) {
    EXPECT_NE(fact.at(i, 0).AsInt(), -1);
    EXPECT_NE(fact.at(i, 1).AsInt(), -1);
  }
}

TEST(FlattenTest, DummySlotsForSmallCollections) {
  Database db = BuildRunningExample();
  FlattenResult flat = UnwrapOrDie(FlattenBackAndForth(db, 3));
  const Relation& fact = flat.db.RelationByName("Publication_flat");
  // With fanout 3 and 2-author papers, slot 3 is always the dummy.
  for (size_t i = 0; i < fact.NumRows(); ++i) {
    EXPECT_EQ(fact.at(i, 2).AsInt(), -1);
  }
  // The dummy member/dimension rows keep the join total.
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(flat.db));
  EXPECT_EQ(u.NumRows(), 3u);
}

TEST(FlattenTest, FanoutTooSmallRejected) {
  Database db = BuildRunningExample();
  EXPECT_FALSE(FlattenBackAndForth(db, 1).ok());
  EXPECT_FALSE(FlattenBackAndForth(db, 0).ok());
}

TEST(FlattenTest, UnsupportedShapesRejected) {
  Database db = BuildRunningExample(/*all_standard=*/true);
  // No back-and-forth key: nothing to flatten.
  EXPECT_EQ(FlattenBackAndForth(db, 3).status().code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace xplain
