#include "relational/aggregate.h"

#include "gtest/gtest.h"
#include "relational/parser.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::Pred;
using ::xplain::testing::UnwrapOrDie;

TEST(AccumulatorTest, CountStar) {
  AggregateAccumulator acc(AggregateKind::kCountStar);
  acc.Add(Value::Null());
  acc.Add(Value::Null());
  EXPECT_EQ(acc.Finish().AsInt(), 2);
  EXPECT_DOUBLE_EQ(acc.FinishNumeric(), 2.0);
}

TEST(AccumulatorTest, CountDistinctIgnoresNullsAndDupes) {
  AggregateAccumulator acc(AggregateKind::kCountDistinct);
  acc.Add(Value::Str("a"));
  acc.Add(Value::Str("a"));
  acc.Add(Value::Str("b"));
  acc.Add(Value::Null());
  EXPECT_EQ(acc.Finish().AsInt(), 2);
}

TEST(AccumulatorTest, SumAvgMinMax) {
  AggregateAccumulator sum(AggregateKind::kSum);
  AggregateAccumulator avg(AggregateKind::kAvg);
  AggregateAccumulator mn(AggregateKind::kMin);
  AggregateAccumulator mx(AggregateKind::kMax);
  for (int v : {4, 2, 6}) {
    sum.Add(Value::Int(v));
    avg.Add(Value::Int(v));
    mn.Add(Value::Int(v));
    mx.Add(Value::Int(v));
  }
  EXPECT_DOUBLE_EQ(sum.Finish().AsDouble(), 12.0);
  EXPECT_DOUBLE_EQ(avg.Finish().AsDouble(), 4.0);
  EXPECT_EQ(mn.Finish().AsInt(), 2);
  EXPECT_EQ(mx.Finish().AsInt(), 6);
}

TEST(AccumulatorTest, EmptyGroups) {
  EXPECT_EQ(AggregateAccumulator(AggregateKind::kCountStar).Finish().AsInt(),
            0);
  EXPECT_TRUE(AggregateAccumulator(AggregateKind::kSum).Finish().is_null());
  EXPECT_TRUE(AggregateAccumulator(AggregateKind::kMin).Finish().is_null());
  EXPECT_TRUE(AggregateAccumulator(AggregateKind::kAvg).Finish().is_null());
  EXPECT_DOUBLE_EQ(AggregateAccumulator(AggregateKind::kSum).FinishNumeric(),
                   0.0);
}

TEST(AccumulatorTest, MergeMatchesSequential) {
  AggregateAccumulator a(AggregateKind::kCountDistinct);
  AggregateAccumulator b(AggregateKind::kCountDistinct);
  a.Add(Value::Int(1));
  a.Add(Value::Int(2));
  b.Add(Value::Int(2));
  b.Add(Value::Int(3));
  a.Merge(b);
  EXPECT_EQ(a.Finish().AsInt(), 3);

  AggregateAccumulator s1(AggregateKind::kSum), s2(AggregateKind::kSum);
  s1.Add(Value::Int(1));
  s2.Add(Value::Int(2));
  s1.Merge(s2);
  EXPECT_DOUBLE_EQ(s1.Finish().AsDouble(), 3.0);

  AggregateAccumulator m1(AggregateKind::kMax), m2(AggregateKind::kMax);
  m2.Add(Value::Int(9));
  m1.Merge(m2);
  EXPECT_EQ(m1.Finish().AsInt(), 9);
}

TEST(EvaluateAggregateTest, CountStarOverUniversal) {
  Database db = BuildRunningExample();
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  Value v = EvaluateAggregate(u, AggregateSpec::CountStar(), nullptr);
  EXPECT_EQ(v.AsInt(), 6);
}

TEST(EvaluateAggregateTest, WithFilter) {
  Database db = BuildRunningExample();
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  DnfPredicate sigmod = Pred(db, "Publication.venue = 'SIGMOD'");
  Value v = EvaluateAggregate(u, AggregateSpec::CountStar(), &sigmod);
  EXPECT_EQ(v.AsInt(), 4);  // s1, s2, s5, s6
}

TEST(EvaluateAggregateTest, CountDistinctPubid) {
  Database db = BuildRunningExample();
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  ColumnRef pubid = *db.ResolveColumn("Publication.pubid");
  DnfPredicate com = Pred(db, "Author.dom = 'com'");
  Value v = EvaluateAggregate(u, AggregateSpec::CountDistinct(pubid), &com);
  EXPECT_EQ(v.AsInt(), 3);  // com authors touch P1, P2, P3
}

TEST(EvaluateAggregateTest, LiveMaskRestrictsRows) {
  Database db = BuildRunningExample();
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  RowSet live(u.NumRows());
  live.Set(0);
  live.Set(1);
  Value v = EvaluateAggregate(u, AggregateSpec::CountStar(), nullptr, &live);
  EXPECT_EQ(v.AsInt(), 2);
}

TEST(ParseAggregateTest, Forms) {
  Database db = BuildRunningExample();
  AggregateSpec star = UnwrapOrDie(ParseAggregate(db, "count(*)"));
  EXPECT_EQ(star.kind, AggregateKind::kCountStar);
  AggregateSpec distinct =
      UnwrapOrDie(ParseAggregate(db, "count(distinct Publication.pubid)"));
  EXPECT_EQ(distinct.kind, AggregateKind::kCountDistinct);
  EXPECT_EQ(db.ColumnName(distinct.column), "Publication.pubid");
  AggregateSpec sum = UnwrapOrDie(ParseAggregate(db, "sum(year)"));
  EXPECT_EQ(sum.kind, AggregateKind::kSum);
  AggregateSpec mx = UnwrapOrDie(ParseAggregate(db, "max(Author.name)"));
  EXPECT_EQ(mx.kind, AggregateKind::kMax);
  EXPECT_EQ(star.ToString(db), "count(*)");
  EXPECT_EQ(distinct.ToString(db), "count(distinct Publication.pubid)");
}

TEST(ParseAggregateTest, Errors) {
  Database db = BuildRunningExample();
  EXPECT_FALSE(ParseAggregate(db, "count()").ok());
  EXPECT_FALSE(ParseAggregate(db, "median(year)").ok());
  EXPECT_FALSE(ParseAggregate(db, "sum(Author.name)").ok());  // not numeric
  EXPECT_FALSE(ParseAggregate(db, "count(*) trailing").ok());
}

}  // namespace
}  // namespace xplain
