#include "core/degree.h"

#include "gtest/gtest.h"
#include "relational/parser.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::Pred;
using ::xplain::testing::UnwrapOrDie;

class DegreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildRunningExample();
    universal_ = std::make_unique<UniversalRelation>(
        UnwrapOrDie(UniversalRelation::Build(db_)));
    engine_ = std::make_unique<InterventionEngine>(universal_.get());

    // Q = q1 / q2 with q1 = SIGMOD com papers, q2 = SIGMOD edu papers
    // (count distinct pubid); Q(D) = 2 / 1 = 2.
    AggregateQuery q1, q2;
    q1.name = "q1";
    q1.agg =
        AggregateSpec::CountDistinct(*db_.ResolveColumn("Publication.pubid"));
    q1.where = Pred(db_,
                    "Author.dom = 'com' AND Publication.venue = 'SIGMOD'");
    q2 = q1;
    q2.name = "q2";
    q2.where = Pred(db_,
                    "Author.dom = 'edu' AND Publication.venue = 'SIGMOD'");
    ExprPtr expr = UnwrapOrDie(ParseExpression("q1 / q2", {"q1", "q2"}));
    question_.query =
        UnwrapOrDie(NumericalQuery::Create({q1, q2}, expr));
    question_.direction = Direction::kHigh;
  }

  Database db_;
  std::unique_ptr<UniversalRelation> universal_;
  std::unique_ptr<InterventionEngine> engine_;
  UserQuestion question_;
};

TEST_F(DegreeTest, Signs) {
  EXPECT_DOUBLE_EQ(AggravationSign(Direction::kHigh), 1.0);
  EXPECT_DOUBLE_EQ(AggravationSign(Direction::kLow), -1.0);
  EXPECT_DOUBLE_EQ(InterventionSign(Direction::kHigh), -1.0);
  EXPECT_DOUBLE_EQ(InterventionSign(Direction::kLow), 1.0);
}

TEST_F(DegreeTest, AggravationRestrictsToPhi) {
  // phi = [venue = SIGMOD]: D_phi has q1 = 2, q2 = 1 -> mu_aggr = 2.
  ConjunctivePredicate phi = Pred(db_, "Publication.venue = 'SIGMOD'");
  EXPECT_DOUBLE_EQ(AggravationDegree(*universal_, question_, phi), 2.0);

  // phi = [name = 'RR']: rows u2, u5 -> q1 = 2 (P1, P3), q2 = 0 ->
  // epsilon-guarded ratio 2 / 1e-4.
  ConjunctivePredicate rr = Pred(db_, "Author.name = 'RR'");
  EXPECT_DOUBLE_EQ(AggravationDegree(*universal_, question_, rr), 2.0 / 1e-4);
}

TEST_F(DegreeTest, AggravationSignFlipsForLow) {
  UserQuestion low = question_;
  low.direction = Direction::kLow;
  ConjunctivePredicate phi = Pred(db_, "Publication.venue = 'SIGMOD'");
  EXPECT_DOUBLE_EQ(AggravationDegree(*universal_, low, phi), -2.0);
}

TEST_F(DegreeTest, InterventionDegreeExactRemovesDelta) {
  // phi = [name = 'RR']: removing RR cascades to P1 and P3 (back-and-forth)
  // and then to all their author links; residual universal = {u3, u4} (P2
  // by JG and CM). q1 = 1 (P2 com via CM), q2 = ... P2 is VLDB, so q1 = 0,
  // q2 = 0 -> Q(D') = (0+?) / eps... both zero -> 0 / eps = 0.
  ConjunctivePredicate phi = Pred(db_, "Author.name = 'RR'");
  InterventionResult result;
  double degree = UnwrapOrDie(
      InterventionDegreeExact(*engine_, question_, phi, &result));
  // dir = high -> mu = -Q(D - Delta) = -0.
  EXPECT_DOUBLE_EQ(degree, 0.0);
  EXPECT_GT(DeltaCount(result.delta), 0u);
  // RR deleted; JG and CM survive (they still have P2).
  EXPECT_TRUE(result.delta[0].Test(1));
  EXPECT_FALSE(result.delta[0].Test(0));
  EXPECT_FALSE(result.delta[0].Test(2));
}

TEST_F(DegreeTest, InterventionDegreeOfNoopExplanation) {
  // phi matching nothing leaves Q unchanged: mu = -Q(D) = -2.
  ConjunctivePredicate phi = Pred(db_, "Author.name = 'ZZ'");
  double degree =
      UnwrapOrDie(InterventionDegreeExact(*engine_, question_, phi));
  EXPECT_DOUBLE_EQ(degree, -2.0);
}

TEST_F(DegreeTest, BetterExplanationGetsHigherInterventionDegree) {
  // Removing RR (kills all com SIGMOD papers) must outrank removing JG
  // (kills the edu SIGMOD paper, which *raises* Q).
  double rr = UnwrapOrDie(InterventionDegreeExact(
      *engine_, question_, Pred(db_, "Author.name = 'RR'")));
  double jg = UnwrapOrDie(InterventionDegreeExact(
      *engine_, question_, Pred(db_, "Author.name = 'JG'")));
  EXPECT_GT(rr, jg);
}

}  // namespace
}  // namespace xplain
