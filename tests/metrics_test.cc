// Tests for util/metrics: counter/gauge/histogram semantics, registry
// snapshots, the caching macros, atomicity under concurrent writers (the
// tsan preset runs this file), and the XPLAIN_LOG -> metrics routing.
//
// Metrics are process-global, so every test measures *deltas* against
// values read at test start and uses test-unique metric names.

#include "util/metrics.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.h"

namespace xplain {
namespace {

using internal::GetLogThreshold;
using internal::LogLevel;
using internal::SetLogThreshold;

TEST(CounterTest, IncrementAndValue) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(GaugeTest, LastWriterWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(3.5);
  gauge.Set(-1.0);
  EXPECT_EQ(gauge.value(), -1.0);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, MomentsAndBuckets) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.mean(), 0.0);
  hist.Record(0.5);  // bucket 0: < 1
  hist.Record(1.0);  // bucket 1: [1, 2)
  hist.Record(3.0);  // bucket 2: [2, 4)
  hist.Record(3.5);  // bucket 2 again
  EXPECT_EQ(hist.count(), 4);
  EXPECT_DOUBLE_EQ(hist.sum(), 8.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 2.0);
  EXPECT_DOUBLE_EQ(hist.max(), 3.5);
  EXPECT_EQ(hist.bucket(0), 1);
  EXPECT_EQ(hist.bucket(1), 1);
  EXPECT_EQ(hist.bucket(2), 2);
  EXPECT_EQ(hist.bucket(3), 0);
}

TEST(HistogramTest, HugeValuesLandInLastBucket) {
  Histogram hist;
  hist.Record(1e300);
  hist.Record(1e300);
  EXPECT_EQ(hist.bucket(Histogram::kNumBuckets - 1), 2);
  EXPECT_DOUBLE_EQ(hist.max(), 1e300);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram hist;
  hist.Record(7.0);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.sum(), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
  EXPECT_EQ(hist.bucket(3), 0);
}

TEST(MetricsRegistryTest, IsValidName) {
  EXPECT_TRUE(MetricsRegistry::IsValidName("cube.base_cells"));
  EXPECT_TRUE(MetricsRegistry::IsValidName("a"));
  EXPECT_TRUE(MetricsRegistry::IsValidName("log2.x_9"));
  EXPECT_FALSE(MetricsRegistry::IsValidName(""));
  EXPECT_FALSE(MetricsRegistry::IsValidName("Cube.cells"));
  EXPECT_FALSE(MetricsRegistry::IsValidName("cube-cells"));
  EXPECT_FALSE(MetricsRegistry::IsValidName("cube cells"));
}

TEST(MetricsRegistryTest, GettersReturnStablePointers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* c1 = registry.GetCounter("test.metrics.stable_counter");
  Counter* c2 = registry.GetCounter("test.metrics.stable_counter");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = registry.GetGauge("test.metrics.stable_gauge");
  Gauge* g2 = registry.GetGauge("test.metrics.stable_gauge");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = registry.GetHistogram("test.metrics.stable_hist");
  Histogram* h2 = registry.GetHistogram("test.metrics.stable_hist");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, SnapshotExpandsHistograms) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.metrics.snap_counter")->Increment(5);
  registry.GetGauge("test.metrics.snap_gauge")->Set(2.5);
  Histogram* hist = registry.GetHistogram("test.metrics.snap_hist");
  hist->Reset();
  hist->Record(10.0);
  hist->Record(30.0);

  std::vector<std::pair<std::string, double>> snapshot = registry.Snapshot();
  auto value_of = [&](const std::string& key) -> double {
    for (const auto& [name, value] : snapshot) {
      if (name == key) return value;
    }
    ADD_FAILURE() << "missing snapshot key " << key;
    return -1.0;
  };
  EXPECT_GE(value_of("test.metrics.snap_counter"), 5.0);
  EXPECT_EQ(value_of("test.metrics.snap_gauge"), 2.5);
  EXPECT_EQ(value_of("test.metrics.snap_hist.count"), 2.0);
  EXPECT_EQ(value_of("test.metrics.snap_hist.sum"), 40.0);
  EXPECT_EQ(value_of("test.metrics.snap_hist.mean"), 20.0);
  EXPECT_EQ(value_of("test.metrics.snap_hist.max"), 30.0);
}

TEST(MetricsRegistryTest, CounterSnapshotExcludesGaugesAndHistograms) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.metrics.delta_counter")->Increment();
  registry.GetGauge("test.metrics.delta_gauge")->Set(1.0);
  registry.GetHistogram("test.metrics.delta_hist")->Record(1.0);
  for (const auto& [name, value] : registry.CounterSnapshot()) {
    EXPECT_EQ(name.find("test.metrics.delta_gauge"), std::string::npos);
    EXPECT_EQ(name.find("test.metrics.delta_hist"), std::string::npos);
  }
}

TEST(MetricsMacroTest, CounterAddMacroAccumulates) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test.metrics.macro_counter");
  const int64_t before = counter->value();
  for (int i = 0; i < 10; ++i) XPLAIN_COUNTER_ADD("test.metrics.macro_counter", 2);
  EXPECT_EQ(counter->value() - before, 20);
}

TEST(MetricsMacroTest, GaugeAndHistogramMacros) {
  XPLAIN_GAUGE_SET("test.metrics.macro_gauge", 9.0);
  EXPECT_EQ(MetricsRegistry::Global().GetGauge("test.metrics.macro_gauge")->value(),
            9.0);
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.metrics.macro_hist");
  const int64_t before = hist->count();
  XPLAIN_HISTOGRAM_RECORD("test.metrics.macro_hist", 4.0);
  EXPECT_EQ(hist->count() - before, 1);
}

// The tsan preset runs this: concurrent increments through the macro (which
// also exercises the magic-static call-site cache) must lose no updates.
TEST(MetricsConcurrencyTest, CounterAtomicUnderConcurrentWriters) {
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test.metrics.race_counter");
  const int64_t before = counter->value();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        XPLAIN_COUNTER_ADD("test.metrics.race_counter", 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value() - before,
            static_cast<int64_t>(kThreads) * kIncrementsPerThread);
}

TEST(MetricsConcurrencyTest, HistogramMomentsConsistentUnderWriters) {
  constexpr int kThreads = 4;
  constexpr int kRecordsPerThread = 5000;
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.metrics.race_hist");
  hist->Reset();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist] {
      for (int i = 0; i < kRecordsPerThread; ++i) hist->Record(2.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(hist->count(),
            static_cast<int64_t>(kThreads) * kRecordsPerThread);
  EXPECT_DOUBLE_EQ(hist->sum(), 2.0 * kThreads * kRecordsPerThread);
  EXPECT_DOUBLE_EQ(hist->max(), 2.0);
}

TEST(HistogramPercentileTest, EmptyHistogramIsZero) {
  Histogram hist;
  EXPECT_EQ(HistogramPercentile(hist, 50.0), 0.0);
  EXPECT_EQ(HistogramPercentile(hist, 99.0), 0.0);
}

TEST(HistogramPercentileTest, SingleValueClampsToMax) {
  Histogram hist;
  hist.Record(100.0);
  // One sample in bucket [64, 128): the upper bound is clamped to the
  // observed max, so every percentile lands at or below 100.
  EXPECT_LE(HistogramPercentile(hist, 50.0), 100.0);
  EXPECT_LE(HistogramPercentile(hist, 99.0), 100.0);
  EXPECT_GE(HistogramPercentile(hist, 99.0), 64.0);
}

TEST(HistogramPercentileTest, MedianSitsInTheMiddleBucket) {
  Histogram hist;
  for (int i = 0; i < 100; ++i) hist.Record(10.0);   // bucket [8, 16)
  for (int i = 0; i < 100; ++i) hist.Record(1000.0); // bucket [512, 1024)
  const double p50 = HistogramPercentile(hist, 50.0);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 16.0);
  const double p99 = HistogramPercentile(hist, 99.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1000.0);  // clamped to observed max
}

TEST(HistogramPercentileTest, PercentileIsMonotoneInP) {
  Histogram hist;
  for (int i = 1; i <= 64; ++i) hist.Record(static_cast<double>(i));
  double previous = -1.0;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double value = HistogramPercentile(hist, p);
    EXPECT_GE(value, previous) << "p=" << p;
    previous = value;
  }
}

// --- Prometheus text exposition ---------------------------------------------

TEST(PrometheusTextTest, CounterAndGaugeSamples) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.prom.requests")->Increment(7);
  registry.GetGauge("test.prom.depth")->Set(2.5);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE xplain_test_prom_requests counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("\nxplain_test_prom_requests 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE xplain_test_prom_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("\nxplain_test_prom_depth 2.5\n"), std::string::npos);
}

TEST(PrometheusTextTest, HistogramLadderIsCumulative) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram* hist = registry.GetHistogram("test.prom.lat_us");
  hist->Reset();
  hist->Record(0.5);    // bucket 0: < 1
  hist->Record(3.0);    // bucket 2: [2, 4)
  hist->Record(300.0);  // bucket 9: [256, 512)
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE xplain_test_prom_lat_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("xplain_test_prom_lat_us_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("xplain_test_prom_lat_us_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("xplain_test_prom_lat_us_bucket{le=\"512\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("xplain_test_prom_lat_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("xplain_test_prom_lat_us_sum 303.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("xplain_test_prom_lat_us_count 3\n"),
            std::string::npos);
}

// Scans every _bucket sample in the whole exposition and asserts the
// cumulative counts never decrease within a family, and that each family's
// +Inf bucket equals its _count (the registry is quiesced here).
TEST(PrometheusTextTest, AllBucketLaddersMonotoneAndConsistent) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram* hist = registry.GetHistogram("test.prom.monotone_us");
  hist->Reset();
  for (int i = 0; i < 50; ++i) hist->Record(static_cast<double>(i * 17));
  const std::string text = registry.PrometheusText();

  std::string family;       // name up to "_bucket{"
  double previous = -1.0;   // last cumulative count in the family
  double inf_value = -1.0;  // the family's +Inf count
  size_t families = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const size_t bucket = line.find("_bucket{le=\"");
    if (bucket != std::string::npos) {
      const std::string name = line.substr(0, bucket);
      if (name != family) {
        family = name;
        previous = -1.0;
        ++families;
      }
      const double value = std::stod(line.substr(line.find("} ") + 2));
      EXPECT_GE(value, previous) << line;
      previous = value;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_value = value;
      continue;
    }
    const size_t count = line.find("_count ");
    if (count != std::string::npos && line.substr(0, count) == family) {
      EXPECT_EQ(std::stod(line.substr(count + 7)), inf_value) << line;
    }
  }
  EXPECT_GE(families, 1u);
}

// XPLAIN_LOG kWarning/kError statements count into log.warnings /
// log.errors even when the threshold silences the output.
TEST(LogMetricsTest, WarningsAndErrorsRouteToCounters) {
  const LogLevel saved = GetLogThreshold();
  SetLogThreshold(LogLevel::kFatal);  // silence output, keep the counters
  Counter* warnings = MetricsRegistry::Global().GetCounter("log.warnings");
  Counter* errors = MetricsRegistry::Global().GetCounter("log.errors");
  const int64_t warnings_before = warnings->value();
  const int64_t errors_before = errors->value();
  XPLAIN_LOG(kWarning) << "silenced warning";
  XPLAIN_LOG(kError) << "silenced error";
  XPLAIN_LOG(kInfo) << "info is not counted";
  EXPECT_EQ(warnings->value() - warnings_before, 1);
  EXPECT_EQ(errors->value() - errors_before, 1);
  SetLogThreshold(saved);
}

TEST(LogMetricsTest, LogEveryNEmitsFirstAndEveryNth) {
  const LogLevel saved = GetLogThreshold();
  SetLogThreshold(LogLevel::kFatal);
  Counter* warnings = MetricsRegistry::Global().GetCounter("log.warnings");
  const int64_t before = warnings->value();
  for (int i = 0; i < 7; ++i) {
    XPLAIN_LOG_EVERY_N(kWarning, 3) << "occurrence " << i;
  }
  // Occurrences 0, 3, and 6 construct a LogMessage; the rest are one
  // relaxed atomic increment.
  EXPECT_EQ(warnings->value() - before, 3);
  SetLogThreshold(saved);
}

}  // namespace
}  // namespace xplain
