#ifndef XPLAIN_TESTS_TEST_UTIL_H_
#define XPLAIN_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "relational/database.h"
#include "relational/parser.h"
#include "relational/predicate.h"
#include "util/result.h"

namespace xplain {
namespace testing {

#define XPLAIN_ASSERT_OK(expr)                                \
  do {                                                        \
    const ::xplain::Status _st = (expr);                      \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (false)

#define XPLAIN_EXPECT_OK(expr)                                \
  do {                                                        \
    const ::xplain::Status _st = (expr);                      \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (false)

/// Unwraps a Result<T> or fails the test.
template <typename T>
T UnwrapOrDie(Result<T> result, const char* what = "result") {
  if (!result.ok()) {
    ADD_FAILURE() << what << ": " << result.status().ToString();
  }
  return std::move(result).ValueOrDie();
}

/// Builds the paper's running example (Figure 3):
///
///   Author:      r1=(A1,JG,C.edu,edu) r2=(A2,RR,M.com,com)
///                r3=(A3,CM,I.com,com)
///   Authored:    s1=(A1,P1) s2=(A2,P1) s3=(A1,P2) s4=(A3,P2)
///                s5=(A2,P3) s6=(A3,P3)
///   Publication: t1=(P1,2001,SIGMOD) t2=(P2,2011,VLDB) t3=(P3,2001,SIGMOD)
///
/// Foreign keys (Eq. 2): Authored.id -> Author.id (standard),
/// Authored.pubid <-> Publication.pubid (back-and-forth unless
/// `all_standard`).
inline Database BuildRunningExample(bool all_standard = false) {
  auto author_schema = RelationSchema::Create("Author",
                                              {{"id", DataType::kString},
                                               {"name", DataType::kString},
                                               {"inst", DataType::kString},
                                               {"dom", DataType::kString}},
                                              {"id"});
  auto authored_schema = RelationSchema::Create(
      "Authored", {{"id", DataType::kString}, {"pubid", DataType::kString}},
      {"id", "pubid"});
  auto pub_schema = RelationSchema::Create("Publication",
                                           {{"pubid", DataType::kString},
                                            {"year", DataType::kInt64},
                                            {"venue", DataType::kString}},
                                           {"pubid"});
  Relation author(std::move(*author_schema));
  Relation authored(std::move(*authored_schema));
  Relation publication(std::move(*pub_schema));

  author.AppendUnchecked({Value::Str("A1"), Value::Str("JG"),
                          Value::Str("C.edu"), Value::Str("edu")});
  author.AppendUnchecked({Value::Str("A2"), Value::Str("RR"),
                          Value::Str("M.com"), Value::Str("com")});
  author.AppendUnchecked({Value::Str("A3"), Value::Str("CM"),
                          Value::Str("I.com"), Value::Str("com")});

  authored.AppendUnchecked({Value::Str("A1"), Value::Str("P1")});  // s1
  authored.AppendUnchecked({Value::Str("A2"), Value::Str("P1")});  // s2
  authored.AppendUnchecked({Value::Str("A1"), Value::Str("P2")});  // s3
  authored.AppendUnchecked({Value::Str("A3"), Value::Str("P2")});  // s4
  authored.AppendUnchecked({Value::Str("A2"), Value::Str("P3")});  // s5
  authored.AppendUnchecked({Value::Str("A3"), Value::Str("P3")});  // s6

  publication.AppendUnchecked(
      {Value::Str("P1"), Value::Int(2001), Value::Str("SIGMOD")});  // t1
  publication.AppendUnchecked(
      {Value::Str("P2"), Value::Int(2011), Value::Str("VLDB")});  // t2
  publication.AppendUnchecked(
      {Value::Str("P3"), Value::Int(2001), Value::Str("SIGMOD")});  // t3

  Database db;
  XPLAIN_CHECK(db.AddRelation(std::move(author)).ok());
  XPLAIN_CHECK(db.AddRelation(std::move(authored)).ok());
  XPLAIN_CHECK(db.AddRelation(std::move(publication)).ok());

  ForeignKey to_author;
  to_author.child_relation = "Authored";
  to_author.child_attrs = {"id"};
  to_author.parent_relation = "Author";
  to_author.parent_attrs = {"id"};
  to_author.kind = ForeignKeyKind::kStandard;
  XPLAIN_CHECK(db.AddForeignKey(to_author).ok());

  ForeignKey to_pub;
  to_pub.child_relation = "Authored";
  to_pub.child_attrs = {"pubid"};
  to_pub.parent_relation = "Publication";
  to_pub.parent_attrs = {"pubid"};
  to_pub.kind =
      all_standard ? ForeignKeyKind::kStandard : ForeignKeyKind::kBackAndForth;
  XPLAIN_CHECK(db.AddForeignKey(to_pub).ok());
  return db;
}

/// Parses a predicate or fails the test.
inline ConjunctivePredicate Pred(const Database& db, const std::string& text) {
  return UnwrapOrDie(ParsePredicate(db, text), text.c_str());
}

/// Collects the rows of a RowSet as a sorted vector for assertions.
inline std::vector<size_t> Rows(const RowSet& set) { return set.ToRows(); }

/// Builds the Example 2.9 chain instance:
///   D = {R1(a), S1(a,b), R2(b), S2(b,c), R3(c)}
/// with four standard FKs. If `extended` (Example 2.10), also inserts
/// S1(a,b'), R2(b'), S2(b',c).
inline Database BuildChainExample(bool extended = false) {
  auto r1s = RelationSchema::Create("R1", {{"x", DataType::kString}}, {"x"});
  auto s1s = RelationSchema::Create(
      "S1", {{"x", DataType::kString}, {"y", DataType::kString}}, {"x", "y"});
  auto r2s = RelationSchema::Create("R2", {{"y", DataType::kString}}, {"y"});
  auto s2s = RelationSchema::Create(
      "S2", {{"y", DataType::kString}, {"z", DataType::kString}}, {"y", "z"});
  auto r3s = RelationSchema::Create("R3", {{"z", DataType::kString}}, {"z"});
  Relation r1(std::move(*r1s)), s1(std::move(*s1s)), r2(std::move(*r2s)),
      s2(std::move(*s2s)), r3(std::move(*r3s));
  r1.AppendUnchecked({Value::Str("a")});
  s1.AppendUnchecked({Value::Str("a"), Value::Str("b")});
  r2.AppendUnchecked({Value::Str("b")});
  s2.AppendUnchecked({Value::Str("b"), Value::Str("c")});
  r3.AppendUnchecked({Value::Str("c")});
  if (extended) {
    s1.AppendUnchecked({Value::Str("a"), Value::Str("b'")});
    r2.AppendUnchecked({Value::Str("b'")});
    s2.AppendUnchecked({Value::Str("b'"), Value::Str("c")});
  }
  Database db;
  XPLAIN_CHECK(db.AddRelation(std::move(r1)).ok());
  XPLAIN_CHECK(db.AddRelation(std::move(s1)).ok());
  XPLAIN_CHECK(db.AddRelation(std::move(r2)).ok());
  XPLAIN_CHECK(db.AddRelation(std::move(s2)).ok());
  XPLAIN_CHECK(db.AddRelation(std::move(r3)).ok());
  auto add_fk = [&db](const char* child, const char* cattr,
                      const char* parent, const char* pattr) {
    ForeignKey fk;
    fk.child_relation = child;
    fk.child_attrs = {cattr};
    fk.parent_relation = parent;
    fk.parent_attrs = {pattr};
    fk.kind = ForeignKeyKind::kStandard;
    XPLAIN_CHECK(db.AddForeignKey(fk).ok());
  };
  add_fk("S1", "x", "R1", "x");
  add_fk("S1", "y", "R2", "y");
  add_fk("S2", "y", "R2", "y");
  add_fk("S2", "z", "R3", "z");
  return db;
}

}  // namespace testing
}  // namespace xplain

#endif  // XPLAIN_TESTS_TEST_UTIL_H_
