#include "core/explanation.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::Pred;

TEST(ExplanationTest, FromPredicate) {
  Database db = BuildRunningExample();
  Explanation e =
      Explanation::FromPredicate(Pred(db, "Author.name = 'JG'"));
  EXPECT_FALSE(e.has_cell());
  EXPECT_EQ(e.NumBound(), 1);
  EXPECT_FALSE(e.IsTrivial());
  EXPECT_EQ(e.ToString(db), "[Author.name = 'JG']");
}

TEST(ExplanationTest, FromCellBuildsEqualityAtoms) {
  Database db = BuildRunningExample();
  ColumnRef name = *db.ResolveColumn("Author.name");
  ColumnRef year = *db.ResolveColumn("Publication.year");
  Explanation e = Explanation::FromCell(
      {name, year}, {Value::Str("JG"), Value::Int(2001)});
  EXPECT_TRUE(e.has_cell());
  EXPECT_EQ(e.NumBound(), 2);
  EXPECT_EQ(e.predicate().atoms().size(), 2u);
  EXPECT_EQ(e.ToString(db),
            "[Author.name = 'JG' AND Publication.year = 2001]");
}

TEST(ExplanationTest, NullCoordsAreDontCares) {
  Database db = BuildRunningExample();
  ColumnRef name = *db.ResolveColumn("Author.name");
  ColumnRef year = *db.ResolveColumn("Publication.year");
  Explanation e = Explanation::FromCell({name, year},
                                        {Value::Null(), Value::Int(2001)});
  EXPECT_EQ(e.NumBound(), 1);
  EXPECT_EQ(e.predicate().atoms().size(), 1u);
  Explanation trivial = Explanation::FromCell(
      {name, year}, {Value::Null(), Value::Null()});
  EXPECT_TRUE(trivial.IsTrivial());
}

TEST(ExplanationTest, SpecializationOrder) {
  Database db = BuildRunningExample();
  ColumnRef name = *db.ResolveColumn("Author.name");
  ColumnRef year = *db.ResolveColumn("Publication.year");
  std::vector<ColumnRef> attrs{name, year};
  Explanation general =
      Explanation::FromCell(attrs, {Value::Str("JG"), Value::Null()});
  Explanation specific =
      Explanation::FromCell(attrs, {Value::Str("JG"), Value::Int(2001)});
  Explanation other =
      Explanation::FromCell(attrs, {Value::Str("RR"), Value::Int(2001)});
  EXPECT_TRUE(specific.IsSpecializationOf(general));
  EXPECT_FALSE(general.IsSpecializationOf(specific));
  EXPECT_FALSE(other.IsSpecializationOf(general));
  // Non-strict: every explanation specializes itself.
  EXPECT_TRUE(general.IsSpecializationOf(general));
  // Everything specializes the trivial cell.
  Explanation trivial =
      Explanation::FromCell(attrs, {Value::Null(), Value::Null()});
  EXPECT_TRUE(specific.IsSpecializationOf(trivial));
}

}  // namespace
}  // namespace xplain
