#include "core/intervention.h"
#include "gtest/gtest.h"
#include "relational/parser.h"
#include "relational/predicate.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::Pred;
using ::xplain::testing::UnwrapOrDie;

class DnfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildRunningExample();
    universal_ = std::make_unique<UniversalRelation>(
        UnwrapOrDie(UniversalRelation::Build(db_)));
  }

  Database db_;
  std::unique_ptr<UniversalRelation> universal_;
};

TEST_F(DnfTest, TruthTableBasics) {
  DnfPredicate false_pred;
  EXPECT_TRUE(false_pred.IsFalse());
  EXPECT_FALSE(false_pred.IsTrue());
  EXPECT_FALSE(false_pred.EvalUniversal(*universal_, 0));
  EXPECT_EQ(false_pred.ToString(db_), "[false]");

  DnfPredicate true_pred = DnfPredicate::True();
  EXPECT_TRUE(true_pred.IsTrue());
  EXPECT_FALSE(true_pred.IsFalse());
  EXPECT_TRUE(true_pred.EvalUniversal(*universal_, 0));
}

TEST_F(DnfTest, ImplicitConversionFromConjunction) {
  DnfPredicate p = Pred(db_, "Author.name = 'JG'");
  ASSERT_EQ(p.disjuncts().size(), 1u);
  EXPECT_FALSE(p.IsTrue());
}

TEST_F(DnfTest, EvalDisjunction) {
  DnfPredicate p = UnwrapOrDie(ParseDnfPredicate(
      db_, "Author.name = 'JG' OR Author.name = 'RR'"));
  ASSERT_EQ(p.disjuncts().size(), 2u);
  int matches = 0;
  for (size_t u = 0; u < universal_->NumRows(); ++u) {
    if (p.EvalUniversal(*universal_, u)) ++matches;
  }
  EXPECT_EQ(matches, 4);  // JG: 2 rows, RR: 2 rows
}

TEST_F(DnfTest, AndDistributes) {
  DnfPredicate p = UnwrapOrDie(ParseDnfPredicate(
      db_, "Author.name = 'JG' OR Author.name = 'RR'"));
  ConjunctivePredicate sigmod = Pred(db_, "Publication.venue = 'SIGMOD'");
  DnfPredicate both = p.And(sigmod);
  ASSERT_EQ(both.disjuncts().size(), 2u);
  EXPECT_EQ(both.disjuncts()[0].atoms().size(), 2u);
  int matches = 0;
  for (size_t u = 0; u < universal_->NumRows(); ++u) {
    if (both.EvalUniversal(*universal_, u)) ++matches;
  }
  EXPECT_EQ(matches, 3);  // s1 (JG,P1), s2 (RR,P1), s5 (RR,P3)
}

TEST_F(DnfTest, OrAppends) {
  DnfPredicate p = Pred(db_, "Author.name = 'JG'");
  DnfPredicate wider = p.Or(Pred(db_, "Author.name = 'CM'"));
  EXPECT_EQ(wider.disjuncts().size(), 2u);
  EXPECT_EQ(wider.ToString(db_),
            "[Author.name = 'JG'] OR [Author.name = 'CM']");
}

TEST_F(DnfTest, MentionsAndMaxRelation) {
  DnfPredicate p = UnwrapOrDie(ParseDnfPredicate(
      db_, "Author.name = 'JG' OR Publication.year = 2001"));
  EXPECT_TRUE(p.MentionsRelation(0));
  EXPECT_FALSE(p.MentionsRelation(1));
  EXPECT_TRUE(p.MentionsRelation(2));
  EXPECT_EQ(p.MaxMentionedRelation(), 2);
  EXPECT_EQ(DnfPredicate().MaxMentionedRelation(), -1);
}

TEST_F(DnfTest, ParserPrecedenceAndErrors) {
  // AND binds tighter than OR: two disjuncts of sizes 2 and 1.
  DnfPredicate p = UnwrapOrDie(ParseDnfPredicate(
      db_,
      "Author.name = 'JG' AND Publication.year = 2001 OR Author.dom = "
      "'com'"));
  ASSERT_EQ(p.disjuncts().size(), 2u);
  EXPECT_EQ(p.disjuncts()[0].atoms().size(), 2u);
  EXPECT_EQ(p.disjuncts()[1].atoms().size(), 1u);
  // Empty text parses to TRUE.
  EXPECT_TRUE(UnwrapOrDie(ParseDnfPredicate(db_, " ")).IsTrue());
  // The conjunctive parser rejects OR with a helpful message.
  auto conj = ParsePredicate(db_, "Author.dom = 'com' OR Author.dom = 'edu'");
  ASSERT_FALSE(conj.ok());
  EXPECT_NE(conj.status().message().find("ParseDnfPredicate"),
            std::string::npos);
  EXPECT_FALSE(ParseDnfPredicate(db_, "Author.dom = 'com' OR").ok());
}

// The paper-style disjunctive intervention: remove all tuples matching
// either disjunct.
TEST_F(DnfTest, DisjunctiveIntervention) {
  InterventionEngine engine(universal_.get());
  DnfPredicate phi = UnwrapOrDie(ParseDnfPredicate(
      db_, "Author.name = 'JG' OR Author.name = 'CM'"));
  InterventionResult result = UnwrapOrDie(engine.Compute(phi));
  // Removing both JG and CM: all their papers (P1, P2, P3 -- P1 via JG, P2
  // via both, P3 via CM) die, then RR dangles. Everything goes.
  EXPECT_EQ(DeltaCount(result.delta), db_.TotalRows());
  EXPECT_TRUE(result.residual_phi_free);
  ValidityReport report = VerifyIntervention(db_, phi, result.delta);
  EXPECT_TRUE(report.valid()) << report.ToString();
}

TEST_F(DnfTest, DisjunctiveInterventionPartial) {
  InterventionEngine engine(universal_.get());
  // [JG and 2001] OR [JG and 2011]: both of JG's papers go but the other
  // authors survive through P3.
  DnfPredicate phi = UnwrapOrDie(ParseDnfPredicate(
      db_,
      "Author.name = 'JG' AND Publication.year = 2001 OR "
      "Author.name = 'JG' AND Publication.year = 2011"));
  InterventionResult result = UnwrapOrDie(engine.Compute(phi));
  EXPECT_TRUE(result.delta[0].Test(0));   // JG removed
  EXPECT_FALSE(result.delta[0].Test(1));  // RR survives
  EXPECT_FALSE(result.delta[0].Test(2));  // CM survives
  EXPECT_TRUE(result.delta[2].Test(0));   // P1 removed
  EXPECT_TRUE(result.delta[2].Test(1));   // P2 removed
  EXPECT_FALSE(result.delta[2].Test(2));  // P3 survives
}

}  // namespace
}  // namespace xplain
