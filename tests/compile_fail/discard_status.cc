// Compile-fail fixture: silently dropping a returned Status must not
// compile under -Werror (class-level [[nodiscard]]). Driven by the
// nodiscard_status_enforced ctest entry with WILL_FAIL.

#include "util/status.h"

namespace xplain {

Status MightFail() { return Status::Internal("boom"); }

void Caller() {
  MightFail();  // discarded Status: must trigger -Werror=unused-result
}

}  // namespace xplain
