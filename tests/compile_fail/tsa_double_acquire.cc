// Compile-fail fixture: acquiring a mutex that is already held must trip
// -Werror=thread-safety under Clang (self-deadlock on a non-recursive lock).
//
// Expected diagnostic: acquiring mutex 'mu_' that is already held

#include "util/mutex.h"

namespace {

class Widget {
 public:
  void Poke() {
    xplain::MutexLock outer(&mu_);
    // BUG under test: re-acquires mu_ while outer still holds it.
    xplain::MutexLock inner(&mu_);
  }

 private:
  xplain::Mutex mu_;
};

}  // namespace

int main() {
  Widget widget;
  widget.Poke();
  return 0;
}
