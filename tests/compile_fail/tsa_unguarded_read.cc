// Compile-fail fixture: reading a XPLAIN_GUARDED_BY member without holding
// its mutex must trip -Werror=thread-safety under Clang.
//
// Expected diagnostic: reading variable 'value_' requires holding mutex 'mu_'

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    xplain::MutexLock lock(&mu_);
    ++value_;
  }

  // BUG under test: reads value_ with no lock held.
  int Peek() const { return value_; }

 private:
  mutable xplain::Mutex mu_;
  int value_ XPLAIN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Peek();
}
