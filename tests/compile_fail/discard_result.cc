// Compile-fail fixture: silently dropping a returned Result<T> must not
// compile under -Werror (class-level [[nodiscard]]). Driven by the
// nodiscard_result_enforced ctest entry with WILL_FAIL.

#include "util/result.h"

namespace xplain {

Result<int> MightFail() { return 7; }

void Caller() {
  MightFail();  // discarded Result: must trigger -Werror=unused-result
}

}  // namespace xplain
