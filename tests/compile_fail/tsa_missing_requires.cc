// Compile-fail fixture: calling a XPLAIN_REQUIRES(mu_) method without
// holding the mutex must trip -Werror=thread-safety under Clang.
//
// Expected diagnostic:
//   calling function 'IncrementLocked' requires holding mutex 'mu_'

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  // BUG under test: the lock-requiring helper is called with no lock held.
  void Increment() { IncrementLocked(); }

 private:
  void IncrementLocked() XPLAIN_REQUIRES(mu_) { ++value_; }

  xplain::Mutex mu_;
  int value_ XPLAIN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
