#include "relational/database.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;

TEST(DatabaseTest, RelationLookup) {
  Database db = BuildRunningExample();
  EXPECT_EQ(db.num_relations(), 3);
  EXPECT_EQ(*db.RelationIndex("Author"), 0);
  EXPECT_EQ(*db.RelationIndex("Publication"), 2);
  EXPECT_FALSE(db.RelationIndex("Nope").ok());
  EXPECT_EQ(db.RelationByName("Authored").NumRows(), 6u);
  EXPECT_EQ(db.TotalRows(), 12u);
}

TEST(DatabaseTest, DuplicateRelationRejected) {
  Database db = BuildRunningExample();
  auto schema =
      RelationSchema::Create("Author", {{"id", DataType::kInt64}}, {"id"});
  EXPECT_FALSE(db.AddRelation(Relation(std::move(*schema))).ok());
}

TEST(DatabaseTest, ResolveColumnQualifiedAndBare) {
  Database db = BuildRunningExample();
  ColumnRef ref = *db.ResolveColumn("Author.name");
  EXPECT_EQ(ref.relation, 0);
  EXPECT_EQ(ref.attribute, 1);
  EXPECT_EQ(db.ColumnName(ref), "Author.name");
  EXPECT_EQ(db.ColumnType(ref), DataType::kString);
  // Bare names resolve when unambiguous.
  EXPECT_EQ(db.ResolveColumn("venue")->relation, 2);
  // "id" appears in Author and Authored: ambiguous.
  EXPECT_FALSE(db.ResolveColumn("id").ok());
  EXPECT_FALSE(db.ResolveColumn("Author.zz").ok());
  EXPECT_FALSE(db.ResolveColumn("Nope.id").ok());
}

TEST(DatabaseTest, ReferentialIntegrityHolds) {
  Database db = BuildRunningExample();
  XPLAIN_EXPECT_OK(db.CheckReferentialIntegrity());
}

TEST(DatabaseTest, ReferentialIntegrityDetectsDangling) {
  Database db = BuildRunningExample();
  db.mutable_relation(1)->AppendUnchecked(
      {Value::Str("A9"), Value::Str("P1")});
  EXPECT_EQ(db.CheckReferentialIntegrity().code(),
            StatusCode::kConstraintViolation);
}

TEST(DatabaseTest, ReferentialIntegrityRejectsNullKeys) {
  Database db = BuildRunningExample();
  db.mutable_relation(1)->AppendUnchecked({Value::Null(), Value::Str("P1")});
  EXPECT_EQ(db.CheckReferentialIntegrity().code(),
            StatusCode::kConstraintViolation);
}

TEST(DatabaseTest, SemijoinReduceDropsDanglingTuples) {
  Database db = BuildRunningExample();
  // An author with no papers violates global consistency.
  db.mutable_relation(0)->AppendUnchecked({Value::Str("A9"),
                                           Value::Str("ZZ"),
                                           Value::Str("n.edu"),
                                           Value::Str("edu")});
  // A publication nobody wrote.
  db.mutable_relation(2)->AppendUnchecked(
      {Value::Str("P9"), Value::Int(1999), Value::Str("VLDB")});
  EXPECT_EQ(db.SemijoinReduce(), 2u);
  EXPECT_EQ(db.RelationByName("Author").NumRows(), 3u);
  EXPECT_EQ(db.RelationByName("Publication").NumRows(), 3u);
  // Already reduced: no-op.
  EXPECT_EQ(db.SemijoinReduce(), 0u);
}

TEST(DatabaseTest, SemijoinReduceCascades) {
  Database db = BuildRunningExample();
  // Delete all Authored rows for P2 (s3, s4): P2 dangles; its authors
  // remain reachable through their other papers.
  DeltaSet delta = db.EmptyDelta();
  delta[1].Set(2);
  delta[1].Set(3);
  Database reduced = db.ApplyDelta(delta);
  EXPECT_EQ(reduced.SemijoinReduce(), 1u);  // P2 dropped
  EXPECT_EQ(reduced.RelationByName("Author").NumRows(), 3u);
  EXPECT_EQ(reduced.RelationByName("Publication").NumRows(), 2u);
}

TEST(DatabaseTest, ApplyDeltaCompactsRows) {
  Database db = BuildRunningExample();
  DeltaSet delta = db.EmptyDelta();
  delta[0].Set(1);  // drop RR
  Database out = db.ApplyDelta(delta);
  EXPECT_EQ(out.RelationByName("Author").NumRows(), 2u);
  EXPECT_EQ(out.RelationByName("Author").at(1, 1).AsString(), "CM");
  // Foreign keys carried over.
  EXPECT_EQ(out.foreign_keys().size(), 2u);
}

TEST(DatabaseTest, EmptyDeltaShape) {
  Database db = BuildRunningExample();
  DeltaSet delta = db.EmptyDelta();
  ASSERT_EQ(delta.size(), 3u);
  EXPECT_EQ(delta[1].size(), 6u);
  EXPECT_EQ(DeltaCount(delta), 0u);
}

TEST(DatabaseVersionTest, FreshDatabaseStartsAtZeroAndBumpsPerMutation) {
  Database db;
  EXPECT_EQ(db.version(), 0u);
  auto schema =
      RelationSchema::Create("R", {{"id", DataType::kInt64}}, {"id"});
  XPLAIN_EXPECT_OK(db.AddRelation(Relation(std::move(*schema))));
  EXPECT_EQ(db.version(), 1u);
  db.mutable_relation(0)->AppendUnchecked({Value::Int(1)});
  EXPECT_EQ(db.version(), 2u);
}

TEST(DatabaseVersionTest, ApplyDeltaBumpsExactlyOnce) {
  Database db = BuildRunningExample();
  const uint64_t before = db.version();
  DeltaSet delta = db.EmptyDelta();
  delta[0].Set(1);
  Database out = db.ApplyDelta(delta);
  // The derived database is one logical mutation past the parent,
  // regardless of how many internal construction steps built it.
  EXPECT_EQ(out.version(), before + 1);
  // The parent is untouched.
  EXPECT_EQ(db.version(), before);
}

TEST(DatabaseVersionTest, SemijoinReduceBumpsExactlyOnceWhenRowsDrop) {
  Database db = BuildRunningExample();
  db.mutable_relation(2)->AppendUnchecked(
      {Value::Str("P9"), Value::Int(1999), Value::Str("VLDB")});
  const uint64_t before = db.version();
  EXPECT_EQ(db.SemijoinReduce(), 1u);
  EXPECT_EQ(db.version(), before + 1);
  // A no-op reduce is not a logical mutation.
  EXPECT_EQ(db.SemijoinReduce(), 0u);
  EXPECT_EQ(db.version(), before + 1);
}

TEST(MarkDanglingRowsTest, FindsNothingOnConsistentDb) {
  Database db = BuildRunningExample();
  DeltaSet dangling = db.EmptyDelta();
  EXPECT_EQ(MarkDanglingRows(db, &dangling), 0u);
}

TEST(MarkDanglingRowsTest, CascadesAcrossEdges) {
  Database db = BuildRunningExample();
  DeltaSet dangling = db.EmptyDelta();
  // Pretend every Authored row of A1 is deleted: A1 dangles.
  dangling[1].Set(0);
  dangling[1].Set(2);
  size_t added = MarkDanglingRows(db, &dangling);
  EXPECT_GE(added, 1u);
  EXPECT_TRUE(dangling[0].Test(0));  // A1 dropped
  EXPECT_FALSE(dangling[0].Test(1));
}

}  // namespace
}  // namespace xplain
