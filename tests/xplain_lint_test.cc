// Self-test for tools/xplain_lint: seeds each banned pattern into a
// scratch src/ tree and asserts the lint flags it (exit 1, rule name in
// the output), and that clean files pass (exit 0). The binary path is
// injected by CMake as XPLAIN_LINT_BINARY.

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace fs = std::filesystem;

namespace {

struct LintRun {
  int exit_code;
  std::string output;
};

LintRun RunLint(const fs::path& root, const std::string& extra_args = "") {
  const std::string cmd = std::string(XPLAIN_LINT_BINARY) + " --root " +
                          root.string() +
                          (extra_args.empty() ? "" : " " + extra_args) +
                          " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to run " << cmd;
  std::string output;
  char buf[4096];
  while (pipe != nullptr && fgets(buf, sizeof(buf), pipe) != nullptr) {
    output += buf;
  }
  const int raw = pipe != nullptr ? pclose(pipe) : -1;
  const int code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  return {code, output};
}

class XplainLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("xplain_lint_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "src" / "util");
  }
  void TearDown() override { fs::remove_all(root_); }

  void WriteFile(const std::string& rel, const std::string& content) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << path;
    out << content;
  }

  fs::path root_;
};

constexpr char kCleanHeader[] =
    "#ifndef XPLAIN_UTIL_CLEAN_H_\n"
    "#define XPLAIN_UTIL_CLEAN_H_\n"
    "namespace xplain {\n"
    "/// Adds two ints.\n"
    "int Add(int a, int b);\n"
    "}  // namespace xplain\n"
    "#endif  // XPLAIN_UTIL_CLEAN_H_\n";

TEST_F(XplainLintTest, CleanTreePasses) {
  WriteFile("src/util/clean.h", kCleanHeader);
  WriteFile("src/util/clean.cc",
            "#include \"util/clean.h\"\n"
            "namespace xplain {\n"
            "int Add(int a, int b) { return a + b; }\n"
            "}  // namespace xplain\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, FlagsWrongHeaderGuard) {
  WriteFile("src/util/bad.h",
            "#ifndef WRONG_GUARD_H\n"
            "#define WRONG_GUARD_H\n"
            "#endif\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("header-guard"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("XPLAIN_UTIL_BAD_H_"), std::string::npos)
      << run.output;
}

TEST_F(XplainLintTest, FlagsMissingHeaderGuard) {
  WriteFile("src/util/bad.h", "#pragma once\nint x;\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("header-guard"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, FlagsStdCout) {
  WriteFile("src/util/noisy.cc",
            "#include <iostream>\n"
            "void Shout() { std::cout << \"hi\\n\"; }\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-stdout"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, FlagsPrintf) {
  WriteFile("src/util/noisy.cc",
            "#include <cstdio>\n"
            "void Shout() { printf(\"hi\\n\"); }\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-stdout"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, FlagsBannedFunctions) {
  WriteFile("src/util/legacy.cc",
            "#include <cstdlib>\n"
            "int Parse(const char* s) { return atoi(s); }\n"
            "int Roll() { return rand(); }\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("banned-fn"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("atoi"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("rand"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, DoesNotFlagBannedNamesInsideIdentifiers) {
  WriteFile("src/util/fine.cc",
            "int operand(int x) { return x; }\n"
            "int Use() { return operand(3); }\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, FlagsIncludeOfCcFile) {
  WriteFile("src/util/sneaky.cc", "#include \"util/other.cc\"\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("include-cc"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, FlagsUncheckedValueOrDie) {
  WriteFile("src/util/unchecked.cc",
            "int Use(Result<int> r) {\n"
            "  return r.ValueOrDie();\n"
            "}\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("valueordie-unchecked"), std::string::npos)
      << run.output;
}

TEST_F(XplainLintTest, FlagsUncheckedValueOrDieInOneLineFunction) {
  // A single-line function body sits at brace depth 0 at line start; an
  // ok() in an unrelated earlier function must not vouch for it.
  WriteFile("src/util/oneliner.cc",
            "bool Fine(Result<int> r) { return r.ok(); }\n"
            "int Use(Result<int> r) { return r.ValueOrDie(); }\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("valueordie-unchecked"), std::string::npos)
      << run.output;
}

TEST_F(XplainLintTest, AcceptsCheckedValueOrDieInOneLineFunction) {
  WriteFile("src/util/oneliner.cc",
            "int Use(Result<int> r) { return r.ok() ? r.ValueOrDie() : 0; }\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, AcceptsCheckedValueOrDie) {
  WriteFile("src/util/checked.cc",
            "int Use(Result<int> r) {\n"
            "  if (!r.ok()) return -1;\n"
            "  return r.ValueOrDie();\n"
            "}\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, OkCheckInOuterScopeDoesNotCount) {
  // The ok() check must be in (or before) the ValueOrDie's own scope
  // region; a check in a *sibling* earlier function does not leak through
  // because function bodies return to depth 0 between definitions.
  WriteFile("src/util/sibling.cc",
            "bool Check(Result<int> r) { return r.ok(); }\n"
            "int NotChecked();\n"
            "int Use(Result<int> r) {\n"
            "  int pad = NotChecked();\n"
            "  (void)pad;\n"
            "  return r.ValueOrDie();\n"
            "}\n");
  const LintRun run = RunLint(root_);
  // Scanning stops at the enclosing scope boundary (depth drop), so the
  // ok() inside Check() must not satisfy Use()'s ValueOrDie.
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("valueordie-unchecked"), std::string::npos)
      << run.output;
}

TEST_F(XplainLintTest, LintAllowCommentSuppresses) {
  WriteFile("src/util/waived.cc",
            "#include <cstdio>\n"
            "void Shout() { printf(\"hi\\n\"); }  // xplain-lint: allow\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, PatternsInCommentsAndStringsIgnored) {
  WriteFile("src/util/prose.cc",
            "// don't use atoi() or std::cout here\n"
            "/* rand() is banned */\n"
            "const char* kMsg = \"call atoi(x) and printf(y)\";\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, MissingSrcDirIsUsageError) {
  const LintRun run = RunLint(root_ / "nonexistent");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

// --- doc-comment / thread-safety-doc ---------------------------------------

TEST_F(XplainLintTest, FlagsUndocumentedFunctionInCoreHeader) {
  WriteFile("src/core/api.h",
            "#ifndef XPLAIN_CORE_API_H_\n"
            "#define XPLAIN_CORE_API_H_\n"
            "namespace xplain {\n"
            "int Frob(int x);\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_CORE_API_H_\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("doc-comment"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, FlagsUndocumentedFunctionInRelationalHeader) {
  WriteFile("src/relational/api.h",
            "#ifndef XPLAIN_RELATIONAL_API_H_\n"
            "#define XPLAIN_RELATIONAL_API_H_\n"
            "namespace xplain {\n"
            "int Frob(int x);\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_RELATIONAL_API_H_\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("doc-comment"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, UndocumentedFunctionOutsideDocumentedSurfaceIsFine) {
  // src/core/, src/relational/ and src/util/ must document their public
  // surface; other directories (here src/datagen/) are exempt.
  WriteFile("src/datagen/api.h",
            "#ifndef XPLAIN_DATAGEN_API_H_\n"
            "#define XPLAIN_DATAGEN_API_H_\n"
            "namespace xplain {\n"
            "int Frob(int x);\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_DATAGEN_API_H_\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, FlagsClassDocMissingThreadSafety) {
  WriteFile("src/util/widget.h",
            "#ifndef XPLAIN_UTIL_WIDGET_H_\n"
            "#define XPLAIN_UTIL_WIDGET_H_\n"
            "namespace xplain {\n"
            "/// A widget, documented but silent on concurrency.\n"
            "class Widget {\n"
            " public:\n"
            "  int size() const;\n"
            "};\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_UTIL_WIDGET_H_\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("thread-safety-doc"), std::string::npos)
      << run.output;
}

TEST_F(XplainLintTest, AcceptsDocumentedClassWithThreadSafety) {
  WriteFile("src/util/widget.h",
            "#ifndef XPLAIN_UTIL_WIDGET_H_\n"
            "#define XPLAIN_UTIL_WIDGET_H_\n"
            "namespace xplain {\n"
            "/// A widget.\n"
            "/// Thread-safety: immutable after construction.\n"
            "class Widget {\n"
            " public:\n"
            "  /// The size.\n"
            "  int size() const;\n"
            "};\n"
            "/// Frobs a widget.\n"
            "int Frob(const Widget& w);\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_UTIL_WIDGET_H_\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, InternalNamespaceExemptFromDocRules) {
  WriteFile("src/util/traits.h",
            "#ifndef XPLAIN_UTIL_TRAITS_H_\n"
            "#define XPLAIN_UTIL_TRAITS_H_\n"
            "namespace xplain {\n"
            "namespace internal {\n"
            "struct Undocumented {};\n"
            "int Helper(int x);\n"
            "}  // namespace internal\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_UTIL_TRAITS_H_\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, ForwardDeclarationsNeedNoDoc) {
  WriteFile("src/core/fwd.h",
            "#ifndef XPLAIN_CORE_FWD_H_\n"
            "#define XPLAIN_CORE_FWD_H_\n"
            "namespace xplain {\n"
            "class Engine;\n"
            "struct Options;\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_CORE_FWD_H_\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// --- trace-name -------------------------------------------------------------

TEST_F(XplainLintTest, FlagsInvalidSpanName) {
  WriteFile("src/util/spans.cc",
            "void Work() {\n"
            "  XPLAIN_TRACE_SPAN(\"Cube Merge\");\n"
            "}\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("trace-name"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("Cube Merge"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, FlagsInvalidMetricName) {
  WriteFile("src/util/counters.cc",
            "void Work() {\n"
            "  XPLAIN_COUNTER_ADD(\"cube-cells\", 1);\n"
            "}\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("trace-name"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, FlagsDuplicateSpanNameInOneFile) {
  WriteFile("src/util/spans.cc",
            "void A() { XPLAIN_TRACE_SPAN(\"cube.merge\"); }\n"
            "void B() { XPLAIN_TRACE_SPAN(\"cube.merge\"); }\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("trace-name"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("already used"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, SameSpanNameInDifferentFilesIsFine) {
  WriteFile("src/util/a.cc", "void A() { XPLAIN_TRACE_SPAN(\"shared.span\"); }\n");
  WriteFile("src/util/b.cc", "void B() { XPLAIN_TRACE_SPAN(\"shared.span\"); }\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, AcceptsValidTraceNamesIncludingConstructorForm) {
  WriteFile("src/util/spans.cc",
            "void Work() {\n"
            "  TraceSpan merge_span(\"cube.base_merge\");\n"
            "  XPLAIN_GAUGE_SET(\"threadpool.queue_depth\", 3);\n"
            "  XPLAIN_HISTOGRAM_RECORD(\n"
            "      \"threadpool.task_us\", 12);\n"
            "  merge_span.End();\n"
            "}\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, FlagsInvalidNameInRegistryAccessorCall) {
  // The cached-pointer pattern (`static Histogram* h = GetHistogram(...)`)
  // bypasses the macros but mints names into the same namespace, so the
  // rule covers the registry accessors too.
  WriteFile("src/util/cached.cc",
            "void Work() {\n"
            "  static Histogram* h =\n"
            "      GetHistogram(\"Server Latency\");\n"
            "  h->Record(1);\n"
            "}\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("trace-name"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("Server Latency"), std::string::npos)
      << run.output;
}

TEST_F(XplainLintTest, FlagsDuplicateNameAcrossMacroAndAccessor) {
  // A macro call and an accessor call minting the same name in one TU is
  // the same double-registration hazard as two macros.
  WriteFile("src/util/dup.cc",
            "void A() { XPLAIN_COUNTER_ADD(\"cube.cells\", 1); }\n"
            "void B() { Counter* c = GetCounter(\"cube.cells\"); (void)c; }\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("trace-name"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("already used"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, AcceptsValidRegistryAccessorNames) {
  WriteFile("src/util/cached.cc",
            "void Work() {\n"
            "  static Counter* c = GetCounter(\"server.flight.recorded\");\n"
            "  static Gauge* g = GetGauge(\"server.in_flight\");\n"
            "  static Histogram* h = GetHistogram(\"server.op.explain_us\");\n"
            "  (void)c; (void)g; (void)h;\n"
            "}\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, AccessorDeclarationsAndNonLiteralArgsAreSkipped) {
  // Declarations (first token after '(' is a type, not a string literal)
  // and calls forwarding a variable must not be findings.
  WriteFile("src/util/registry.h",
            "#ifndef XPLAIN_UTIL_REGISTRY_H_\n"
            "#define XPLAIN_UTIL_REGISTRY_H_\n"
            "namespace xplain {\n"
            "/// Returns the counter registered under `name`.\n"
            "Counter* GetCounter(const char* name);\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_UTIL_REGISTRY_H_\n");
  WriteFile("src/util/forward.cc",
            "Counter* Lookup(const char* name) { return GetCounter(name); }\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// --- server-trace-prefix ----------------------------------------------------

TEST_F(XplainLintTest, FlagsEngineNamespacedSpanInServerCode) {
  WriteFile("src/server/handler.cc",
            "void Handle() {\n"
            "  XPLAIN_TRACE_SPAN(\"engine.explain\");\n"
            "}\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("server-trace-prefix"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("engine.explain"), std::string::npos)
      << run.output;
}

TEST_F(XplainLintTest, FlagsUnprefixedMetricInServerCode) {
  WriteFile("src/server/handler.cc",
            "void Handle() {\n"
            "  XPLAIN_COUNTER_ADD(\"cache.hits\", 1);\n"
            "}\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("server-trace-prefix"), std::string::npos)
      << run.output;
}

TEST_F(XplainLintTest, AcceptsRpcAndServerPrefixesInServerCode) {
  WriteFile("src/server/handler.cc",
            "void Handle() {\n"
            "  XPLAIN_TRACE_SPAN(\"rpc.execute\");\n"
            "  XPLAIN_COUNTER_ADD(\"server.cache.hits\", 1);\n"
            "  TraceSpan drain_span(\"rpc.drain\");\n"
            "  drain_span.End();\n"
            "}\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, EngineSpansOutsideServerDirAreNotPrefixChecked) {
  WriteFile("src/core/work.cc",
            "void Work() { XPLAIN_TRACE_SPAN(\"engine.explain\"); }\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// --- cluster-trace-prefix ---------------------------------------------------

TEST_F(XplainLintTest, FlagsUnprefixedSpanInClusterCode) {
  WriteFile("src/cluster/coord.cc",
            "void Fanout() {\n"
            "  XPLAIN_TRACE_SPAN(\"server.fanout\");\n"
            "}\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("cluster-trace-prefix"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("server.fanout"), std::string::npos)
      << run.output;
}

TEST_F(XplainLintTest, AcceptsClusterPrefixInClusterCode) {
  WriteFile("src/cluster/coord.cc",
            "void Fanout() {\n"
            "  XPLAIN_TRACE_SPAN(\"cluster.fanout\");\n"
            "  XPLAIN_COUNTER_ADD(\"cluster.shard_errors\", 1);\n"
            "}\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, MacroDefinitionSitesAreNotTraceNameFindings) {
  // The macro definitions pass an identifier, not a literal, as the first
  // argument; the rule must skip them.
  WriteFile("src/util/mymacros.h",
            "#ifndef XPLAIN_UTIL_MYMACROS_H_\n"
            "#define XPLAIN_UTIL_MYMACROS_H_\n"
            "#define XPLAIN_TRACE_SPAN(name) ::xplain::TraceSpan s(name)\n"
            "#endif  // XPLAIN_UTIL_MYMACROS_H_\n");
  const LintRun run = RunLint(root_);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, RulesFlagFiltersFindings) {
  // A file with both a no-stdout and a doc-comment violation: filtering to
  // doc-comment must hide the stdout finding and keep the doc one.
  WriteFile("src/core/api.h",
            "#ifndef XPLAIN_CORE_API_H_\n"
            "#define XPLAIN_CORE_API_H_\n"
            "namespace xplain {\n"
            "int Frob(int x);\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_CORE_API_H_\n");
  WriteFile("src/core/noisy.cc",
            "#include <iostream>\n"
            "void Shout() { std::cout << \"hi\"; }\n");
  const LintRun all = RunLint(root_);
  EXPECT_EQ(all.exit_code, 1) << all.output;
  EXPECT_NE(all.output.find("no-stdout"), std::string::npos) << all.output;
  const LintRun docs = RunLint(root_, "--rules doc-comment,thread-safety-doc");
  EXPECT_EQ(docs.exit_code, 1) << docs.output;
  EXPECT_NE(docs.output.find("doc-comment"), std::string::npos) << docs.output;
  EXPECT_EQ(docs.output.find("no-stdout"), std::string::npos) << docs.output;
  const LintRun other = RunLint(root_, "--rules no-stdout");
  EXPECT_EQ(other.exit_code, 1) << other.output;
  EXPECT_EQ(other.output.find("doc-comment"), std::string::npos)
      << other.output;
}

TEST_F(XplainLintTest, UnknownRuleNameIsUsageError) {
  // A typo in --rules must be a hard error (exit 2) that lists the valid
  // rules, not a filter that silently discards every finding: CI once
  // invoked "--rules doc-commment" and went green on a dirty tree.
  WriteFile("src/util/noisy.cc",
            "#include <iostream>\n"
            "void Shout() { std::cout << \"hi\"; }\n");
  const LintRun run = RunLint(root_, "--rules doc-commment");
  EXPECT_EQ(run.exit_code, 2) << run.output;
  EXPECT_NE(run.output.find("unknown rule 'doc-commment'"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("no-stdout"), std::string::npos)
      << run.output;  // the valid-rule list is printed
  // One bad name poisons the whole invocation even when mixed with valid
  // ones — partial filtering would still hide findings.
  const LintRun mixed = RunLint(root_, "--rules no-stdout,doc-commment");
  EXPECT_EQ(mixed.exit_code, 2) << mixed.output;
}

TEST_F(XplainLintTest, FlagsRawMutexOutsideMutexHeader) {
  WriteFile("src/util/locky.h",
            "#ifndef XPLAIN_UTIL_LOCKY_H_\n"
            "#define XPLAIN_UTIL_LOCKY_H_\n"
            "#include <mutex>\n"
            "namespace xplain {\n"
            "/// A thing.\n"
            "/// Thread-safety: safe.\n"
            "class Locky {\n"
            " private:\n"
            "  std::mutex mu_;\n"
            "};\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_UTIL_LOCKY_H_\n");
  WriteFile("src/util/locky.cc",
            "#include \"util/locky.h\"\n"
            "namespace xplain {\n"
            "void Touch(std::mutex* mu) { std::lock_guard<std::mutex> l(*mu); }\n"
            "}  // namespace xplain\n");
  const LintRun run = RunLint(root_, "--rules raw-mutex");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("raw-mutex"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("locky.h:9"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("locky.cc:3"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, MutexWrapperFileMayUseRawPrimitives) {
  // util/mutex.{h,cc} are the single sanctioned home of the raw
  // primitives; a std::condition_variable there is not a finding.
  WriteFile("src/util/mutex.h",
            "#ifndef XPLAIN_UTIL_MUTEX_H_\n"
            "#define XPLAIN_UTIL_MUTEX_H_\n"
            "#include <mutex>\n"
            "namespace xplain {\n"
            "/// Wrapper.\n"
            "/// Thread-safety: safe.\n"
            "class Mutex {\n"
            " private:\n"
            "  std::mutex mu_;\n"
            "  std::condition_variable cv_;\n"
            "};\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_UTIL_MUTEX_H_\n");
  const LintRun run = RunLint(root_, "--rules raw-mutex");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, AllowCommentExemptsRawMutex) {
  WriteFile("src/util/special.cc",
            "#include <mutex>\n"
            "namespace xplain {\n"
            "std::mutex g_mu;  // xplain-lint: allow\n"
            "}  // namespace xplain\n");
  const LintRun run = RunLint(root_, "--rules raw-mutex");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, FlagsGuardedByCommentWithoutAnnotation) {
  WriteFile("src/server/state.h",
            "#ifndef XPLAIN_SERVER_STATE_H_\n"
            "#define XPLAIN_SERVER_STATE_H_\n"
            "#include \"util/mutex.h\"\n"
            "namespace xplain {\n"
            "class State {\n"
            " private:\n"
            "  Mutex mu_;\n"
            "  int count_ = 0;  // guarded by mu_\n"
            "};\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_SERVER_STATE_H_\n");
  const LintRun run = RunLint(root_, "--rules guarded-by");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("guarded-by"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("state.h:8"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, GuardedByCommentAboveDeclarationIsAlsoFlagged) {
  WriteFile("src/server/state.h",
            "#ifndef XPLAIN_SERVER_STATE_H_\n"
            "#define XPLAIN_SERVER_STATE_H_\n"
            "namespace xplain {\n"
            "class State {\n"
            " private:\n"
            "  // All counters below are guarded by mu_.\n"
            "  int count_ = 0;\n"
            "};\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_SERVER_STATE_H_\n");
  const LintRun run = RunLint(root_, "--rules guarded-by");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("state.h:7"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, AnnotatedGuardedMemberIsClean) {
  WriteFile("src/server/state.h",
            "#ifndef XPLAIN_SERVER_STATE_H_\n"
            "#define XPLAIN_SERVER_STATE_H_\n"
            "#include \"util/mutex.h\"\n"
            "#include \"util/thread_annotations.h\"\n"
            "namespace xplain {\n"
            "class State {\n"
            " private:\n"
            "  Mutex mu_;  // guarded by nothing, it IS the lock\n"
            "  int count_ XPLAIN_GUARDED_BY(mu_) = 0;  // guarded by mu_\n"
            "};\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_SERVER_STATE_H_\n");
  const LintRun run = RunLint(root_, "--rules guarded-by");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(XplainLintTest, FlagsMutableMemberOfThreadSafeClass) {
  WriteFile("src/core/cachey.h",
            "#ifndef XPLAIN_CORE_CACHEY_H_\n"
            "#define XPLAIN_CORE_CACHEY_H_\n"
            "namespace xplain {\n"
            "/// A memoizing widget.\n"
            "/// Thread-safety: safe.\n"
            "class Cachey {\n"
            " private:\n"
            "  mutable int memo_ = 0;\n"
            "};\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_CORE_CACHEY_H_\n");
  const LintRun run = RunLint(root_, "--rules guarded-by");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("guarded-by"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("cachey.h:8"), std::string::npos) << run.output;
}

TEST_F(XplainLintTest, MutableMutexAndAtomicsAreNotGuardedByFindings) {
  // Synchronization primitives are the capability, not guarded data; a
  // doc block mentioning "guarded by" as prose (///) is narrative too.
  WriteFile("src/core/cachey.h",
            "#ifndef XPLAIN_CORE_CACHEY_H_\n"
            "#define XPLAIN_CORE_CACHEY_H_\n"
            "#include <atomic>\n"
            "#include \"util/mutex.h\"\n"
            "#include \"util/thread_annotations.h\"\n"
            "namespace xplain {\n"
            "/// A memoizing widget.\n"
            "/// Thread-safety: safe — `memo_` is guarded by `mu_`.\n"
            "class Cachey {\n"
            " private:\n"
            "  mutable Mutex mu_;\n"
            "  mutable std::atomic<int> hits_{0};\n"
            "  mutable int memo_ XPLAIN_GUARDED_BY(mu_) = 0;\n"
            "};\n"
            "}  // namespace xplain\n"
            "#endif  // XPLAIN_CORE_CACHEY_H_\n");
  const LintRun run = RunLint(root_, "--rules guarded-by");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
