// Regression tests for the XPLAIN_CHECK / XPLAIN_DCHECK contracts:
//  - XPLAIN_CHECK expands to a single expression, so it nests in unbraced
//    if/else without swallowing the else (dangling-else hazard).
//  - XPLAIN_CHECK aborts on failure.
//  - XPLAIN_DCHECK side effects do not fire in NDEBUG TUs (see
//    logging_ndebug_test.cc for the NDEBUG half).

#include <gtest/gtest.h>

#include "util/logging.h"

namespace {

TEST(CheckTest, NestsInUnbracedIfElse) {
  // With the old `if (!(cond)) LogMessage(...)` expansion the `else` below
  // bound to the macro's hidden `if`, so `else_taken` stayed false.
  bool else_taken = false;
  if (false)
    XPLAIN_CHECK(true);
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);

  // Streaming a message must also work inside unbraced if/else.
  bool then_taken = false;
  if (true)
    XPLAIN_CHECK(2 + 2 == 4) << "arithmetic broke";
  else
    then_taken = true;
  EXPECT_FALSE(then_taken);
}

TEST(CheckTest, PassingCheckDoesNotEvaluateMessage) {
  int message_evals = 0;
  const auto count = [&message_evals]() {
    ++message_evals;
    return "msg";
  };
  XPLAIN_CHECK(true) << count();
  // The false branch of the ternary is never evaluated when the condition
  // holds, so the message expression must not run.
  EXPECT_EQ(message_evals, 0);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(XPLAIN_CHECK(1 == 2) << "expected failure",
               "Check failed: 1 == 2");
}

TEST(DcheckTest, EvaluatesInDebugTranslationUnits) {
#ifdef NDEBUG
  GTEST_SKIP() << "this TU is compiled with NDEBUG";
#else
  int evals = 0;
  XPLAIN_DCHECK(++evals > 0);
  EXPECT_EQ(evals, 1);
#endif
}

}  // namespace
