#include "relational/universal.h"

#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::UnwrapOrDie;

TEST(UniversalTest, RunningExampleMatchesFigure4) {
  Database db = BuildRunningExample();
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  // Figure 4 lists 6 universal tuples, one per Authored row.
  ASSERT_EQ(u.NumRows(), 6u);

  // Collect (Author.name, Publication.pubid) pairs.
  ColumnRef name = *db.ResolveColumn("Author.name");
  ColumnRef pubid = *db.ResolveColumn("Publication.pubid");
  std::multiset<std::pair<std::string, std::string>> pairs;
  for (size_t i = 0; i < u.NumRows(); ++i) {
    pairs.emplace(u.ValueAt(i, name).AsString(),
                  u.ValueAt(i, pubid).AsString());
  }
  std::multiset<std::pair<std::string, std::string>> expected{
      {"JG", "P1"}, {"RR", "P1"}, {"JG", "P2"},
      {"CM", "P2"}, {"RR", "P3"}, {"CM", "P3"}};
  EXPECT_EQ(pairs, expected);
}

TEST(UniversalTest, MaterializeRowConcatenatesBaseTuples) {
  Database db = BuildRunningExample();
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  Tuple row = u.MaterializeRow(0);
  // Author(4) + Authored(2) + Publication(3) attributes.
  EXPECT_EQ(row.size(), 9u);
  EXPECT_EQ(u.ColumnNames().size(), 9u);
  EXPECT_EQ(u.ColumnNames()[0], "Author.id");
  EXPECT_EQ(u.ColumnNames()[8], "Publication.venue");
}

TEST(UniversalTest, DeletionsExcludeJoinRows) {
  Database db = BuildRunningExample();
  DeltaSet deleted = db.EmptyDelta();
  deleted[2].Set(0);  // drop publication P1
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db, deleted));
  // s1 and s2 joined P1; 4 rows remain.
  EXPECT_EQ(u.NumRows(), 4u);
}

TEST(UniversalTest, SupportSetsCoverSemijoinReducedDb) {
  Database db = BuildRunningExample();
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  DeltaSet support = u.SupportSets();
  for (int r = 0; r < db.num_relations(); ++r) {
    EXPECT_EQ(support[r].count(), db.relation(r).NumRows())
        << db.relation(r).name();
  }
}

TEST(UniversalTest, SupportSetsWithLiveMask) {
  Database db = BuildRunningExample();
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  RowSet live(u.NumRows());
  live.Set(0);  // only the first universal row
  DeltaSet support = u.SupportSets(&live);
  EXPECT_EQ(support[0].count(), 1u);
  EXPECT_EQ(support[1].count(), 1u);
  EXPECT_EQ(support[2].count(), 1u);
}

TEST(UniversalTest, SingleRelationDatabase) {
  auto schema = RelationSchema::Create("T", {{"k", DataType::kInt64}}, {"k"});
  Relation t(std::move(*schema));
  t.AppendUnchecked({Value::Int(1)});
  t.AppendUnchecked({Value::Int(2)});
  Database db;
  XPLAIN_EXPECT_OK(db.AddRelation(std::move(t)));
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  EXPECT_EQ(u.NumRows(), 2u);
  EXPECT_EQ(u.BaseRow(1, 0), 1u);
}

TEST(UniversalTest, DisconnectedSchemaRejected) {
  auto s1 = RelationSchema::Create("T1", {{"k", DataType::kInt64}}, {"k"});
  auto s2 = RelationSchema::Create("T2", {{"k", DataType::kInt64}}, {"k"});
  Relation t1(std::move(*s1)), t2(std::move(*s2));
  t1.AppendUnchecked({Value::Int(1)});
  t2.AppendUnchecked({Value::Int(1)});
  Database db;
  XPLAIN_EXPECT_OK(db.AddRelation(std::move(t1)));
  XPLAIN_EXPECT_OK(db.AddRelation(std::move(t2)));
  EXPECT_FALSE(UniversalRelation::Build(db).ok());
}

TEST(UniversalTest, ChainExampleUniversal) {
  Database db = ::xplain::testing::BuildChainExample(/*extended=*/true);
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  // Two chains: a-b-c and a-b'-c.
  EXPECT_EQ(u.NumRows(), 2u);
}

TEST(UniversalTest, CyclicFkGraphUsesFilters) {
  // Two parallel FKs between the same pair of relations: C(x, y) refs
  // P1-like parents twice through composite single-attr keys, forming a
  // cycle in the FK multigraph.
  auto ps = RelationSchema::Create("P", {{"k", DataType::kInt64}}, {"k"});
  auto cs = RelationSchema::Create(
      "C", {{"a", DataType::kInt64}, {"b", DataType::kInt64}}, {"a", "b"});
  Relation p(std::move(*ps)), c(std::move(*cs));
  p.AppendUnchecked({Value::Int(1)});
  p.AppendUnchecked({Value::Int(2)});
  c.AppendUnchecked({Value::Int(1), Value::Int(1)});
  c.AppendUnchecked({Value::Int(1), Value::Int(2)});
  Database db;
  XPLAIN_EXPECT_OK(db.AddRelation(std::move(c)));
  XPLAIN_EXPECT_OK(db.AddRelation(std::move(p)));
  ForeignKey fk1;
  fk1.child_relation = "C";
  fk1.child_attrs = {"a"};
  fk1.parent_relation = "P";
  fk1.parent_attrs = {"k"};
  XPLAIN_EXPECT_OK(db.AddForeignKey(fk1));
  ForeignKey fk2 = fk1;
  fk2.child_attrs = {"b"};
  XPLAIN_EXPECT_OK(db.AddForeignKey(fk2));
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  // Join on BOTH fks: row (1,1) joins P(1); row (1,2) joins nothing (a and
  // b must reference the same P tuple).
  EXPECT_EQ(u.NumRows(), 1u);
  EXPECT_EQ(u.BaseRow(0, 0), 0u);
}

}  // namespace
}  // namespace xplain
