#include "relational/rowset.h"

#include "gtest/gtest.h"

namespace xplain {
namespace {

TEST(RowSetTest, StartsEmpty) {
  RowSet rs(10);
  EXPECT_EQ(rs.size(), 10u);
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_TRUE(rs.empty());
  for (size_t i = 0; i < rs.size(); ++i) EXPECT_FALSE(rs.Test(i));
}

TEST(RowSetTest, SetReportsNewInsertions) {
  RowSet rs(5);
  EXPECT_TRUE(rs.Set(3));
  EXPECT_TRUE(rs.Test(3));
  EXPECT_EQ(rs.count(), 1u);
  // Setting an already-set row is a no-op and says so.
  EXPECT_FALSE(rs.Set(3));
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_FALSE(rs.empty());
}

TEST(RowSetTest, ClearEmptiesWithoutResizing) {
  RowSet rs(4);
  rs.Set(0);
  rs.Set(2);
  rs.Clear();
  EXPECT_EQ(rs.size(), 4u);
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_FALSE(rs.Test(0));
  EXPECT_FALSE(rs.Test(2));
}

TEST(RowSetTest, ToRowsIsAscendingAndComplete) {
  RowSet rs(8);
  // Insert out of order; iteration order must be ascending positions.
  rs.Set(5);
  rs.Set(1);
  rs.Set(7);
  rs.Set(1);
  const std::vector<size_t> rows = rs.ToRows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], 1u);
  EXPECT_EQ(rows[1], 5u);
  EXPECT_EQ(rows[2], 7u);
}

TEST(RowSetTest, UnionWithCountsOnlyNewRows) {
  RowSet a(6);
  a.Set(0);
  a.Set(1);
  RowSet b(6);
  b.Set(1);
  b.Set(4);
  EXPECT_EQ(a.UnionWith(b), 1u);  // only row 4 is new
  EXPECT_EQ(a.count(), 3u);
  EXPECT_TRUE(a.Test(0));
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(4));
  // Union is idempotent.
  EXPECT_EQ(a.UnionWith(b), 0u);
  EXPECT_EQ(a.count(), 3u);
}

TEST(RowSetTest, SubsetAndEquality) {
  RowSet small(5);
  small.Set(2);
  RowSet big(5);
  big.Set(2);
  big.Set(4);
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  // Every set is a subset of itself, and equality is positional.
  EXPECT_TRUE(big.IsSubsetOf(big));
  EXPECT_FALSE(small == big);
  small.Set(4);
  EXPECT_TRUE(small == big);
}

TEST(RowSetTest, EmptySetIsSubsetOfEverything) {
  RowSet none(3);
  RowSet some(3);
  some.Set(0);
  EXPECT_TRUE(none.IsSubsetOf(some));
  EXPECT_TRUE(none.IsSubsetOf(none));
}

TEST(DeltaSetTest, DeltaCountSumsComponents) {
  DeltaSet delta;
  delta.emplace_back(4);
  delta.emplace_back(6);
  delta[0].Set(1);
  delta[1].Set(0);
  delta[1].Set(5);
  EXPECT_EQ(DeltaCount(delta), 3u);
}

TEST(DeltaSetTest, DeltaSubsetIsComponentwise) {
  DeltaSet a;
  a.emplace_back(4);
  a.emplace_back(4);
  DeltaSet b = a;
  a[0].Set(1);
  b[0].Set(1);
  b[1].Set(2);
  EXPECT_TRUE(DeltaIsSubsetOf(a, b));
  a[1].Set(3);
  EXPECT_FALSE(DeltaIsSubsetOf(a, b));
}

}  // namespace
}  // namespace xplain
