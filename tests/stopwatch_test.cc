#include "util/stopwatch.h"

#include <chrono>
#include <thread>

#include "gtest/gtest.h"

namespace xplain {
namespace {

TEST(StopwatchTest, StartsNearZero) {
  Stopwatch sw;
  // A fresh stopwatch has essentially no elapsed time; one second of slack
  // keeps this robust on heavily loaded CI machines.
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch sw;
  double previous = sw.ElapsedSeconds();
  for (int i = 0; i < 100; ++i) {
    const double now = sw.ElapsedSeconds();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

TEST(StopwatchTest, MeasuresASleep) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // sleep_for guarantees *at least* the requested duration.
  EXPECT_GE(sw.ElapsedMillis(), 20.0);
}

TEST(StopwatchTest, MillisAndSecondsAgree) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double seconds = sw.ElapsedSeconds();
  const double millis = sw.ElapsedMillis();
  // Sampled back to back: millis must be at least 1000x the earlier
  // seconds sample, and the two stay within a loose factor of each other.
  EXPECT_GE(millis, seconds * 1000.0);
  EXPECT_LT(millis, (seconds + 1.0) * 1000.0);
}

TEST(StopwatchTest, RestartResetsTheOrigin) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double before = sw.ElapsedMillis();
  sw.Restart();
  const double after = sw.ElapsedMillis();
  EXPECT_LT(after, before);
  EXPECT_GE(after, 0.0);
}

TEST(StopwatchTest, InstancesAreIndependent) {
  Stopwatch a;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Stopwatch b;
  // `a` started earlier, so it has strictly more elapsed time.
  EXPECT_GT(a.ElapsedSeconds(), b.ElapsedSeconds());
  a.Restart();
  EXPECT_LE(a.ElapsedSeconds(), b.ElapsedSeconds());
}

}  // namespace
}  // namespace xplain
