// Cluster layer unit tests (DESIGN.md §13): shard-map hashing and the
// exactness envelope, hash partitioning of a database, the partial-payload
// wire round trip, and the coordinator-side merge — asserted byte-identical
// to a single node over the union database.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/merge.h"
#include "cluster/partition.h"
#include "cluster/shard_map.h"
#include "relational/universal.h"
#include "server/protocol.h"
#include "server/service.h"
#include "tests/test_util.h"

namespace xplain {
namespace cluster {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::UnwrapOrDie;

TEST(ShardListTest, ParsesHostPortPairs) {
  const auto shards =
      UnwrapOrDie(ParseShardList("127.0.0.1:7411,localhost:80"));
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].host, "127.0.0.1");
  EXPECT_EQ(shards[0].port, 7411);
  EXPECT_EQ(shards[1].host, "localhost");
  EXPECT_EQ(shards[1].port, 80);
  EXPECT_EQ(shards[0].ToString(), "127.0.0.1:7411");
}

TEST(ShardListTest, RejectsMalformedEndpoints) {
  EXPECT_FALSE(ParseShardList("").ok());
  EXPECT_FALSE(ParseShardList("127.0.0.1").ok());
  EXPECT_FALSE(ParseShardList("h:0").ok());
  EXPECT_FALSE(ParseShardList("h:99999").ok());
  EXPECT_FALSE(ParseShardList("h:12x").ok());
  EXPECT_FALSE(ParseShardList("h:1,,h:2").ok());
}

TEST(ShardMapTest, HashingIsDeterministicAndTyped) {
  Tuple a(1), b(1);
  a[0] = Value::Str("P1");
  b[0] = Value::Str("P1");
  EXPECT_EQ(HashPartitionKey(a), HashPartitionKey(b));
  b[0] = Value::Str("P2");
  EXPECT_NE(HashPartitionKey(a), HashPartitionKey(b));
  // The type tag keeps 1 (int) and "1" (string) from colliding.
  Tuple i(1), s(1);
  i[0] = Value::Int(1);
  s[0] = Value::Str("1");
  EXPECT_NE(HashPartitionKey(i), HashPartitionKey(s));
}

class ShardMapEnvelopeTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = BuildRunningExample(); }

  NumericalQuery MakeQuery(const std::string& agg) {
    server::SubquerySpec spec;
    spec.name = "q1";
    spec.agg = agg;
    spec.where = "";
    server::Request request;
    request.op = server::RequestOp::kExplain;
    request.subqueries = {spec};
    request.expr = "q1";
    request.attrs = {"Author.name"};
    return UnwrapOrDie(server::BuildQuestion(db_, request)).query;
  }

  Database db_;
};

TEST_F(ShardMapEnvelopeTest, CountStarAndSumPassAnyPartition) {
  const ShardMap map =
      UnwrapOrDie(ShardMap::Create(db_, {"Author.name"}, 2));
  EXPECT_TRUE(map.CheckQueryEnvelope(MakeQuery("count(*)")).ok());
  EXPECT_TRUE(
      map.CheckQueryEnvelope(MakeQuery("sum(Publication.year)")).ok());
}

TEST_F(ShardMapEnvelopeTest, CountDistinctRequiresThePartitionKey) {
  const ShardMap by_pub =
      UnwrapOrDie(ShardMap::Create(db_, {"Publication.pubid"}, 2));
  EXPECT_TRUE(
      by_pub.CheckQueryEnvelope(MakeQuery("count(distinct Publication.pubid)"))
          .ok());
  const auto rejected =
      by_pub.CheckQueryEnvelope(MakeQuery("count(distinct Author.id)"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.message().find("double-count"), std::string::npos);
}

TEST_F(ShardMapEnvelopeTest, MinMaxAvgAreOutsideTheEnvelope) {
  const ShardMap map =
      UnwrapOrDie(ShardMap::Create(db_, {"Publication.pubid"}, 2));
  for (const char* agg : {"min(Publication.year)", "max(Publication.year)",
                          "avg(Publication.year)"}) {
    const auto rejected = map.CheckQueryEnvelope(MakeQuery(agg));
    ASSERT_FALSE(rejected.ok()) << agg;
    EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument) << agg;
    EXPECT_NE(rejected.message().find("sum-merge envelope"),
              std::string::npos)
        << agg;
  }
}

TEST(ShardMapTest, RejectsUnknownPartitionAttribute) {
  Database db = BuildRunningExample();
  EXPECT_FALSE(ShardMap::Create(db, {"Nope.attr"}, 2).ok());
  EXPECT_FALSE(ShardMap::Create(db, {}, 2).ok());
  EXPECT_FALSE(ShardMap::Create(db, {"Author.name"}, 0).ok());
}

TEST(PartitionTest, UniversalRowsAreDisjointAndExhaustive) {
  Database db = BuildRunningExample();
  const ShardMap map =
      UnwrapOrDie(ShardMap::Create(db, {"Publication.pubid"}, 2));
  const std::vector<Database> shards =
      UnwrapOrDie(PartitionDatabase(db, map));
  ASSERT_EQ(shards.size(), 2u);

  // Every shard database is referentially intact (UniversalRelation::Build
  // enforces the FK graph) and the universal rows partition the original's.
  const UniversalRelation whole = UnwrapOrDie(UniversalRelation::Build(db));
  size_t total = 0;
  for (const Database& shard : shards) {
    const UniversalRelation part =
        UnwrapOrDie(UniversalRelation::Build(shard));
    total += part.NumRows();
  }
  EXPECT_EQ(total, whole.NumRows());

  // The partition key confines each pubid to exactly one shard.
  const int pub = UnwrapOrDie(db.RelationIndex("Publication"));
  size_t pub_rows = 0;
  for (const Database& shard : shards) pub_rows += shard.relation(pub).NumRows();
  EXPECT_EQ(pub_rows, db.relation(pub).NumRows());
}

// End-to-end over in-process services: partition the running example two
// ways, serve each shard with a real XplaindService, fan an EXPLAIN out as
// partial requests, merge, and compare the final payload byte-for-byte
// with the single-node answer to the same line. count(distinct
// Publication.pubid) is intervention-additive on the running example
// (count(*) is not — the back-and-forth key drags co-author rows into the
// delta), so this exercises the pure merge path with no rescore round.
TEST(MergeTest, MergedExplainIsByteIdenticalToSingleNode) {
  const std::string line =
      "{\"id\":7,\"op\":\"EXPLAIN\",\"question\":{\"subqueries\":["
      "{\"name\":\"q1\",\"agg\":\"count(distinct Publication.pubid)\","
      "\"where\":\"venue = 'SIGMOD'\"},"
      "{\"name\":\"q2\",\"agg\":\"count(distinct Publication.pubid)\","
      "\"where\":\"venue = 'VLDB'\"}],"
      "\"expr\":\"q1 - q2\",\"direction\":\"high\"},"
      "\"attrs\":[\"Author.name\",\"Publication.year\"],"
      "\"options\":{\"top_k\":4}}";

  Database db = BuildRunningExample();
  const std::string single =
      UnwrapOrDie(server::XplaindService::Create(BuildRunningExample()))
          ->HandleLine(line);
  ASSERT_NE(single.find("\"ok\":true"), std::string::npos) << single;

  const server::Request request =
      UnwrapOrDie(server::ParseRequest(line));
  const UserQuestion question =
      UnwrapOrDie(server::BuildQuestion(db, request));
  std::vector<ColumnRef> attributes;
  for (const std::string& name : request.attrs) {
    attributes.push_back(UnwrapOrDie(db.ResolveColumn(name)));
  }

  for (size_t k : {size_t{2}, size_t{3}}) {
    const ShardMap map =
        UnwrapOrDie(ShardMap::Create(db, {"Publication.pubid"}, k));
    std::vector<Database> shard_dbs =
        UnwrapOrDie(PartitionDatabase(db, map));

    server::Request partial_request = request;
    partial_request.partial = true;
    const std::string partial_line =
        server::SerializeRequest(partial_request);

    std::vector<ShardPartial> partials;
    for (size_t s = 0; s < k; ++s) {
      auto service = UnwrapOrDie(
          server::XplaindService::Create(std::move(shard_dbs[s])));
      const std::string response = service->HandleLine(partial_line);
      ASSERT_NE(response.find("\"ok\":true"), std::string::npos) << response;
      ASSERT_NE(response.find("\"partial\":true"), std::string::npos);
      partials.push_back(UnwrapOrDie(ParsePartialPayload(response)));
    }

    const MergedExplain merged = UnwrapOrDie(
        MergePartials(question, attributes, request.options, partials));
    ASSERT_FALSE(merged.need_rescore);
    const std::string clustered = server::MakeResponse(
        request.id, server::ReportPayload(db, merged.report, request.op));
    EXPECT_EQ(clustered, single) << "K=" << k;
  }
}

// min_support must be applied at the coordinator after the global sum — a
// cell below threshold on every shard can clear it globally.
TEST(MergeTest, MinSupportIsAppliedAfterTheGlobalMerge) {
  const std::string line =
      "{\"id\":9,\"op\":\"EXPLAIN\",\"question\":{\"subqueries\":["
      "{\"name\":\"q1\",\"agg\":\"count(distinct Publication.pubid)\","
      "\"where\":\"venue = 'SIGMOD'\"},"
      "{\"name\":\"q2\",\"agg\":\"count(distinct Publication.pubid)\","
      "\"where\":\"venue = 'VLDB'\"}],"
      "\"expr\":\"q1 - q2\",\"direction\":\"high\"},"
      "\"attrs\":[\"Author.name\"],"
      "\"options\":{\"top_k\":4,\"min_support\":2}}";

  Database db = BuildRunningExample();
  const std::string single =
      UnwrapOrDie(server::XplaindService::Create(BuildRunningExample()))
          ->HandleLine(line);
  ASSERT_NE(single.find("\"ok\":true"), std::string::npos) << single;

  const server::Request request = UnwrapOrDie(server::ParseRequest(line));
  const UserQuestion question =
      UnwrapOrDie(server::BuildQuestion(db, request));
  std::vector<ColumnRef> attributes = {
      UnwrapOrDie(db.ResolveColumn("Author.name"))};

  const ShardMap map =
      UnwrapOrDie(ShardMap::Create(db, {"Publication.pubid"}, 2));
  std::vector<Database> shard_dbs = UnwrapOrDie(PartitionDatabase(db, map));

  server::Request partial_request = request;
  partial_request.partial = true;
  const std::string partial_line = server::SerializeRequest(partial_request);

  std::vector<ShardPartial> partials;
  for (size_t s = 0; s < 2; ++s) {
    auto service = UnwrapOrDie(
        server::XplaindService::Create(std::move(shard_dbs[s])));
    partials.push_back(
        UnwrapOrDie(ParsePartialPayload(service->HandleLine(partial_line))));
  }
  const MergedExplain merged = UnwrapOrDie(
      MergePartials(question, attributes, request.options, partials));
  ASSERT_FALSE(merged.need_rescore);
  EXPECT_EQ(server::MakeResponse(
                request.id,
                server::ReportPayload(db, merged.report, request.op)),
            single);
}

TEST(MergeTest, ParsePartialPayloadRejectsNonPartialLines) {
  EXPECT_FALSE(ParsePartialPayload("not json").ok());
  EXPECT_FALSE(ParsePartialPayload("{\"id\":1,\"ok\":true}").ok());
  EXPECT_FALSE(
      ParsePartialPayload("{\"id\":1,\"ok\":false,\"error\":\"x\"}").ok());
}

TEST(MergeTest, MergeRejectsMismatchedArity) {
  Database db = BuildRunningExample();
  server::SubquerySpec spec;
  spec.name = "q1";
  spec.agg = "count(*)";
  server::Request request;
  request.op = server::RequestOp::kExplain;
  request.subqueries = {spec};
  request.expr = "q1";
  request.attrs = {"Author.name"};
  const UserQuestion question =
      UnwrapOrDie(server::BuildQuestion(db, request));
  std::vector<ColumnRef> attributes = {
      UnwrapOrDie(db.ResolveColumn("Author.name"))};

  EXPECT_FALSE(
      MergePartials(question, attributes, request.options, {}).ok());
  ShardPartial bad;
  bad.additive = true;
  bad.cell_additive = true;
  bad.u = {1.0, 2.0};  // two subquery originals for a 1-subquery question
  EXPECT_FALSE(
      MergePartials(question, attributes, request.options, {bad}).ok());
}

}  // namespace
}  // namespace cluster
}  // namespace xplain
