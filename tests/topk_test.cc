#include "core/topk.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;

/// Builds a hand-crafted table M over two attributes with controlled
/// degrees. Coordinates use small string/int values.
class TopKTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildRunningExample();
    table_.attributes = {*db_.ResolveColumn("Author.name"),
                         *db_.ResolveColumn("Publication.year")};
    table_.original_values = {10, 10};
    table_.subquery_values.assign(2, {});
  }

  void AddRow(const char* name, int64_t year, double interv, double aggr) {
    Tuple coords(2);
    coords[0] = name == nullptr ? Value::Null() : Value::Str(name);
    coords[1] = year == 0 ? Value::Null() : Value::Int(year);
    table_.coords.push_back(std::move(coords));
    table_.subquery_values[0].push_back(0);
    table_.subquery_values[1].push_back(0);
    table_.mu_interv.push_back(interv);
    table_.mu_aggr.push_back(aggr);
  }

  std::vector<std::string> Names(const std::vector<RankedExplanation>& out) {
    std::vector<std::string> names;
    for (const auto& e : out) names.push_back(e.explanation.ToString(db_));
    return names;
  }

  Database db_;
  TableM table_;
};

TEST_F(TopKTest, NoMinimalSortsByDegree) {
  AddRow("RR", 0, 5.0, 1.0);
  AddRow("JG", 0, 7.0, 2.0);
  AddRow(nullptr, 2001, 6.0, 3.0);
  AddRow(nullptr, 0, 99.0, 99.0);  // trivial: excluded despite top degree
  auto out = TopKExplanations(table_, DegreeKind::kIntervention, 2,
                              MinimalityStrategy::kNone);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].degree, 7.0);
  EXPECT_DOUBLE_EQ(out[1].degree, 6.0);
}

TEST_F(TopKTest, AggravationColumnSelectable) {
  AddRow("RR", 0, 5.0, 1.0);
  AddRow("JG", 0, 7.0, 2.0);
  auto out = TopKExplanations(table_, DegreeKind::kAggravation, 1,
                              MinimalityStrategy::kNone);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].degree, 2.0);
}

TEST_F(TopKTest, DominatedRowDetected) {
  AddRow("RR", 0, 5.0, 5.0);          // row 0: general
  AddRow("RR", 2001, 5.0, 5.0);       // row 1: specialization, same degree
  AddRow("RR", 2011, 8.0, 8.0);       // row 2: specialization, higher
  AddRow("JG", 2001, 4.0, 4.0);       // row 3: unrelated
  EXPECT_FALSE(IsDominated(table_, DegreeKind::kIntervention, 0));
  EXPECT_TRUE(IsDominated(table_, DegreeKind::kIntervention, 1));
  EXPECT_FALSE(IsDominated(table_, DegreeKind::kIntervention, 2));
  EXPECT_FALSE(IsDominated(table_, DegreeKind::kIntervention, 3));
}

TEST_F(TopKTest, SelfJoinDropsDominated) {
  AddRow("RR", 0, 5.0, 0);
  AddRow("RR", 2001, 5.0, 0);  // dominated (paper's phi_3 example)
  AddRow("JG", 2001, 4.0, 0);
  auto out = TopKExplanations(table_, DegreeKind::kIntervention, 10,
                              MinimalityStrategy::kSelfJoin);
  auto names = Names(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(names[0], "[Author.name = 'RR']");
  EXPECT_EQ(names[1],
            "[Author.name = 'JG' AND Publication.year = 2001]");
}

TEST_F(TopKTest, AppendExcludesSpecializationsOfWinners) {
  AddRow("RR", 0, 5.0, 0);
  AddRow("RR", 2001, 5.0, 0);
  AddRow("RR", 2011, 4.5, 0);
  AddRow("JG", 2001, 4.0, 0);
  auto out = TopKExplanations(table_, DegreeKind::kIntervention, 3,
                              MinimalityStrategy::kAppend);
  auto names = Names(out);
  // After [RR] wins, its specializations are excluded; JG follows; then
  // nothing remains.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(names[0], "[Author.name = 'RR']");
  EXPECT_EQ(names[1],
            "[Author.name = 'JG' AND Publication.year = 2001]");
}

TEST_F(TopKTest, AppendAndSelfJoinAgreeOnMinimalSets) {
  AddRow("RR", 0, 5.0, 0);
  AddRow("RR", 2001, 5.0, 0);
  AddRow("JG", 0, 3.0, 0);
  AddRow("JG", 2001, 6.0, 0);  // specializes JG but higher: NOT dominated
  AddRow(nullptr, 2011, 2.0, 0);
  auto self_join = TopKExplanations(table_, DegreeKind::kIntervention, 10,
                                    MinimalityStrategy::kSelfJoin);
  auto append = TopKExplanations(table_, DegreeKind::kIntervention, 10,
                                 MinimalityStrategy::kAppend);
  // JG@2001 outranks everything and is not dominated (its generalization
  // JG has a lower degree), so both strategies rank it first.
  ASSERT_FALSE(self_join.empty());
  ASSERT_FALSE(append.empty());
  EXPECT_EQ(self_join[0].m_row, 3u);
  EXPECT_EQ(append[0].m_row, 3u);
  // Self-join keeps rows 3, 0, 2, 4 (row 1 is dominated by row 0).
  EXPECT_EQ(self_join.size(), 4u);
  // Append continues with [RR] (5.0); [RR,2001] is excluded as its
  // specialization, then [JG] and the year-only row follow.
  ASSERT_EQ(append.size(), 4u);
  EXPECT_EQ(append[1].explanation.ToString(db_), "[Author.name = 'RR']");
  EXPECT_EQ(append[2].m_row, 2u);
  EXPECT_EQ(append[3].m_row, 4u);
}

TEST_F(TopKTest, TieBreakPrefersGeneralExplanations) {
  AddRow("RR", 2001, 5.0, 0);
  AddRow("RR", 0, 5.0, 0);
  auto out = TopKExplanations(table_, DegreeKind::kIntervention, 2,
                              MinimalityStrategy::kNone);
  // Same degree: the paper's dummy-value trick prefers the shorter one.
  EXPECT_EQ(out[0].explanation.NumBound(), 1);
  EXPECT_EQ(out[1].explanation.NumBound(), 2);
}

TEST_F(TopKTest, HybridReadsInterventionColumn) {
  AddRow("RR", 0, 5.0, 1.0);
  AddRow("JG", 0, 7.0, 9.0);
  auto hybrid = TopKExplanations(table_, DegreeKind::kHybrid, 1,
                                 MinimalityStrategy::kNone);
  ASSERT_EQ(hybrid.size(), 1u);
  // Hybrid ranks by the cube-based mu_interv column (7.0), not mu_aggr.
  EXPECT_DOUBLE_EQ(hybrid[0].degree, 7.0);
  EXPECT_STREQ(DegreeKindToString(DegreeKind::kHybrid), "hybrid");
}

TEST_F(TopKTest, EmptyTableYieldsNothing) {
  auto out = TopKExplanations(table_, DegreeKind::kIntervention, 5,
                              MinimalityStrategy::kAppend);
  EXPECT_TRUE(out.empty());
}

TEST_F(TopKTest, StrategyNames) {
  EXPECT_STREQ(MinimalityStrategyToString(MinimalityStrategy::kNone),
               "no-minimal");
  EXPECT_STREQ(MinimalityStrategyToString(MinimalityStrategy::kSelfJoin),
               "minimal-self-join");
  EXPECT_STREQ(MinimalityStrategyToString(MinimalityStrategy::kAppend),
               "minimal-append");
  EXPECT_STREQ(DegreeKindToString(DegreeKind::kIntervention), "intervention");
  EXPECT_STREQ(DegreeKindToString(DegreeKind::kAggravation), "aggravation");
}

}  // namespace
}  // namespace xplain
