// Wire state-machine tests: NDJSON framing under arbitrary fragmentation
// and in-order response release under out-of-order completion
// (server/wire.h, driven by the epoll reactors).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/wire.h"

namespace xplain {
namespace server {
namespace {

std::vector<LineDecoder::Event> FeedString(LineDecoder* decoder,
                                           const std::string& bytes) {
  return decoder->Feed(bytes.data(), bytes.size());
}

TEST(LineDecoderTest, SplitsCompleteLines) {
  LineDecoder decoder(1024);
  const auto events = FeedString(&decoder, "alpha\nbeta\n");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].oversized);
  EXPECT_EQ(events[0].line, "alpha");
  EXPECT_EQ(events[1].line, "beta");
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(LineDecoderTest, ReassemblesOneBytePerFeed) {
  LineDecoder decoder(1024);
  const std::string line = "{\"id\":7,\"op\":\"STATS\"}\n";
  std::vector<LineDecoder::Event> events;
  for (char c : line) {
    auto batch = decoder.Feed(&c, 1);
    events.insert(events.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].line, "{\"id\":7,\"op\":\"STATS\"}");
}

TEST(LineDecoderTest, StripsCarriageReturnAndSwallowsEmptyLines) {
  LineDecoder decoder(1024);
  const auto events = FeedString(&decoder, "one\r\n\n\r\ntwo\n");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].line, "one");
  EXPECT_EQ(events[1].line, "two");
}

TEST(LineDecoderTest, BuffersPartialLineAcrossFeeds) {
  LineDecoder decoder(1024);
  EXPECT_TRUE(FeedString(&decoder, "par").empty());
  EXPECT_EQ(decoder.buffered_bytes(), 3u);
  const auto events = FeedString(&decoder, "tial\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].line, "partial");
}

TEST(LineDecoderTest, OversizedLineWithNewlineRejectsJustThatLine) {
  LineDecoder decoder(8);
  const auto events = FeedString(&decoder, "waytoolongline\nok\n");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].oversized);
  EXPECT_EQ(events[0].line.substr(0, 8), "waytoolo");
  EXPECT_FALSE(events[1].oversized);
  EXPECT_EQ(events[1].line, "ok");
  EXPECT_FALSE(decoder.discarding());
}

TEST(LineDecoderTest, OversizedLineMidStreamDiscardsUntilNewline) {
  LineDecoder decoder(8);
  // The budget is blown before any newline arrives: one oversized event,
  // then discard mode until the line terminator.
  auto events = FeedString(&decoder, "0123456789abcdef");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].oversized);
  EXPECT_TRUE(decoder.discarding());
  // More tail bytes of the same line produce no further events.
  EXPECT_TRUE(FeedString(&decoder, "more-of-the-same").empty());
  // After the newline the decoder resumes normal framing.
  events = FeedString(&decoder, "tail\nnext\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].oversized);
  EXPECT_EQ(events[0].line, "next");
  EXPECT_FALSE(decoder.discarding());
}

TEST(LineDecoderTest, OversizedEventKeepsBoundedPrefix) {
  LineDecoder decoder(4);
  const std::string huge(LineDecoder::kOversizePrefixBytes + 500, 'x');
  const auto events = FeedString(&decoder, huge);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].oversized);
  EXPECT_LE(events[0].line.size(), LineDecoder::kOversizePrefixBytes);
}

TEST(ResponseSequencerTest, ReleasesInOrderWhenCompletedInOrder) {
  ResponseSequencer sequencer;
  const uint64_t a = sequencer.Acquire();
  const uint64_t b = sequencer.Acquire();
  std::vector<std::string> ready;
  sequencer.Complete(a, "ra", &ready);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], "ra");
  sequencer.Complete(b, "rb", &ready);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[1], "rb");
  EXPECT_EQ(sequencer.in_flight(), 0u);
}

TEST(ResponseSequencerTest, HoldsOutOfOrderCompletionsUntilPredecessors) {
  ResponseSequencer sequencer;
  const uint64_t a = sequencer.Acquire();
  const uint64_t b = sequencer.Acquire();
  const uint64_t c = sequencer.Acquire();
  std::vector<std::string> ready;
  sequencer.Complete(c, "rc", &ready);
  EXPECT_TRUE(ready.empty());
  sequencer.Complete(b, "rb", &ready);
  EXPECT_TRUE(ready.empty());
  EXPECT_EQ(sequencer.in_flight(), 3u);
  // Completing the head releases the whole run, in request order.
  sequencer.Complete(a, "ra", &ready);
  ASSERT_EQ(ready.size(), 3u);
  EXPECT_EQ(ready[0], "ra");
  EXPECT_EQ(ready[1], "rb");
  EXPECT_EQ(ready[2], "rc");
  EXPECT_EQ(sequencer.in_flight(), 0u);
}

TEST(ResponseSequencerTest, TracksInFlightAcrossInterleavedAcquires) {
  ResponseSequencer sequencer;
  std::vector<std::string> ready;
  const uint64_t a = sequencer.Acquire();
  EXPECT_EQ(sequencer.in_flight(), 1u);
  sequencer.Complete(a, "ra", &ready);
  EXPECT_EQ(sequencer.in_flight(), 0u);
  const uint64_t b = sequencer.Acquire();
  const uint64_t c = sequencer.Acquire();
  EXPECT_EQ(sequencer.in_flight(), 2u);
  sequencer.Complete(c, "rc", &ready);
  EXPECT_EQ(sequencer.in_flight(), 2u);  // head still outstanding
  sequencer.Complete(b, "rb", &ready);
  EXPECT_EQ(sequencer.in_flight(), 0u);
  ASSERT_EQ(ready.size(), 3u);
  EXPECT_EQ(ready[2], "rc");
}

TEST(ScanRequestIdPrefixTest, RecoversIdFromTruncatedJson) {
  EXPECT_EQ(ScanRequestIdPrefix("{\"id\":42,\"op\":\"EXPL"), 42u);
  EXPECT_EQ(ScanRequestIdPrefix("{ \"id\" : 7 , \"op"), 7u);
  EXPECT_EQ(ScanRequestIdPrefix("{\"op\":\"EXPLAIN\""), 0u);
  EXPECT_EQ(ScanRequestIdPrefix("{\"id\":\"not-a-number\""), 0u);
  EXPECT_EQ(ScanRequestIdPrefix(""), 0u);
}

}  // namespace
}  // namespace server
}  // namespace xplain
