#include "relational/column_cache.h"

#include "gtest/gtest.h"
#include "relational/cube.h"
#include "relational/parser.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::Pred;
using ::xplain::testing::UnwrapOrDie;

class ColumnCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildRunningExample();
    universal_ = std::make_unique<UniversalRelation>(
        UnwrapOrDie(UniversalRelation::Build(db_)));
    name_ = *db_.ResolveColumn("Author.name");
    year_ = *db_.ResolveColumn("Publication.year");
    pubid_ = *db_.ResolveColumn("Publication.pubid");
  }

  Database db_;
  std::unique_ptr<UniversalRelation> universal_;
  ColumnRef name_, year_, pubid_;
};

TEST_F(ColumnCacheTest, EncodingRoundTrips) {
  ColumnCache cache = ColumnCache::Build(*universal_, {name_, year_});
  EXPECT_EQ(cache.num_columns(), 2);
  EXPECT_EQ(cache.NumRows(), universal_->NumRows());
  EXPECT_EQ(cache.DictionarySize(0), 3u);  // JG, RR, CM
  EXPECT_EQ(cache.DictionarySize(1), 2u);  // 2001, 2011
  for (size_t u = 0; u < cache.NumRows(); ++u) {
    EXPECT_TRUE(cache.Decode(0, cache.Code(u, 0))
                    .Equals(universal_->ValueAt(u, name_)));
    EXPECT_TRUE(cache.Decode(1, cache.Code(u, 1))
                    .Equals(universal_->ValueAt(u, year_)));
  }
  EXPECT_EQ(cache.FindColumn(name_), 0);
  EXPECT_EQ(cache.FindColumn(pubid_), -1);
}

TEST_F(ColumnCacheTest, FilterBitmap) {
  DnfPredicate sigmod = Pred(db_, "Publication.venue = 'SIGMOD'");
  RowSet rows = EvaluateFilterBitmap(*universal_, &sigmod);
  EXPECT_EQ(rows.count(), 4u);
  RowSet all = EvaluateFilterBitmap(*universal_, nullptr);
  EXPECT_EQ(all.count(), universal_->NumRows());
}

TEST_F(ColumnCacheTest, CachedCountStarMatchesGeneric) {
  DnfPredicate sigmod = Pred(db_, "Publication.venue = 'SIGMOD'");
  DataCube generic = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_, year_}, AggregateSpec::CountStar(), &sigmod));
  ColumnCache cache = ColumnCache::Build(*universal_, {name_, year_});
  RowSet rows = EvaluateFilterBitmap(*universal_, &sigmod);
  DataCube cached = UnwrapOrDie(DataCube::ComputeCached(
      cache, {0, 1}, AggregateKind::kCountStar, -1, &rows));
  ASSERT_EQ(cached.NumCells(), generic.NumCells());
  for (const auto& [cell, value] : generic.cells()) {
    EXPECT_DOUBLE_EQ(cached.CellValue(cell), value) << TupleToString(cell);
  }
}

TEST_F(ColumnCacheTest, CachedCountDistinctMatchesGeneric) {
  DataCube generic = UnwrapOrDie(DataCube::Compute(
      *universal_, {name_}, AggregateSpec::CountDistinct(pubid_), nullptr));
  ColumnCache cache = ColumnCache::Build(*universal_, {name_, pubid_});
  RowSet rows = EvaluateFilterBitmap(*universal_, nullptr);
  DataCube cached = UnwrapOrDie(DataCube::ComputeCached(
      cache, {0}, AggregateKind::kCountDistinct, 1, &rows));
  ASSERT_EQ(cached.NumCells(), generic.NumCells());
  for (const auto& [cell, value] : generic.cells()) {
    EXPECT_DOUBLE_EQ(cached.CellValue(cell), value) << TupleToString(cell);
  }
}

TEST_F(ColumnCacheTest, CachedRejectsBadArguments) {
  ColumnCache cache = ColumnCache::Build(*universal_, {name_});
  RowSet rows = EvaluateFilterBitmap(*universal_, nullptr);
  EXPECT_FALSE(DataCube::ComputeCached(cache, {}, AggregateKind::kCountStar,
                                       -1, &rows)
                   .ok());
  EXPECT_FALSE(DataCube::ComputeCached(cache, {5}, AggregateKind::kCountStar,
                                       -1, &rows)
                   .ok());
  EXPECT_FALSE(DataCube::ComputeCached(cache, {0},
                                       AggregateKind::kCountDistinct, 7,
                                       &rows)
                   .ok());
  EXPECT_FALSE(
      DataCube::ComputeCached(cache, {0}, AggregateKind::kSum, -1, &rows)
          .ok());
}

}  // namespace
}  // namespace xplain
