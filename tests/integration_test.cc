#include "core/engine.h"
#include "datagen/dblp.h"
#include "datagen/natality.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::UnwrapOrDie;

bool AnyExplanationMentions(const std::vector<RankedExplanation>& out,
                            const Database& db, const std::string& needle) {
  for (const RankedExplanation& e : out) {
    if (e.explanation.ToString(db).find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// End-to-end reproduction of the paper's Section 5.1 qualitative result:
// the top interventions for Q_Race are the confounded "good" subpopulations
// (married, early prenatal care, non-smoking, educated, 30-34).
TEST(IntegrationTest, NatalityQRaceTopInterventions) {
  datagen::NatalityOptions options;
  options.num_rows = 60000;
  Database db = UnwrapOrDie(datagen::GenerateNatality(options));
  ExplainEngine engine = UnwrapOrDie(ExplainEngine::Create(&db));
  UserQuestion question = UnwrapOrDie(datagen::MakeNatalityQRace(db));

  ExplainOptions explain;
  explain.top_k = 5;
  explain.min_support = 500;
  explain.minimality = MinimalityStrategy::kAppend;
  ExplainReport report = UnwrapOrDie(engine.Explain(
      question,
      {"Birth.age", "Birth.tobacco", "Birth.prenatal", "Birth.education",
       "Birth.marital"},
      explain));

  ASSERT_EQ(report.explanations.size(), 5u);
  EXPECT_TRUE(report.additivity.additive) << report.additivity.reason;
  // Every top intervention lowers Q below the original value:
  // mu_interv = -Q(D - Delta) > -Q(D).
  for (const RankedExplanation& e : report.explanations) {
    EXPECT_GT(e.degree, -report.original_value);
  }
  // The paper's Figure 10 list: married / 1st-trim / non-smoking /
  // educated / 30-34. At least three of those flavors must appear.
  int hits = 0;
  for (const char* needle : {"married", "1st trim", "non smoking",
                             ">=16yrs", "30-34"}) {
    if (AnyExplanationMentions(report.explanations, db, needle)) ++hits;
  }
  EXPECT_GE(hits, 3) << report.ToString(db);
}

// Figure 11's shape: aggravation prefers more specific conjunctions than
// intervention does.
TEST(IntegrationTest, NatalityAggravationIsMoreSpecific) {
  datagen::NatalityOptions options;
  options.num_rows = 60000;
  Database db = UnwrapOrDie(datagen::GenerateNatality(options));
  ExplainEngine engine = UnwrapOrDie(ExplainEngine::Create(&db));
  UserQuestion question = UnwrapOrDie(datagen::MakeNatalityQRace(db));

  ExplainOptions interv;
  interv.top_k = 3;
  interv.min_support = 500;
  ExplainOptions aggr = interv;
  aggr.degree = DegreeKind::kAggravation;
  std::vector<std::string> attrs = {"Birth.age", "Birth.tobacco",
                                    "Birth.prenatal", "Birth.education",
                                    "Birth.marital"};
  ExplainReport interv_report =
      UnwrapOrDie(engine.Explain(question, attrs, interv));
  ExplainReport aggr_report =
      UnwrapOrDie(engine.Explain(question, attrs, aggr));
  ASSERT_FALSE(interv_report.explanations.empty());
  ASSERT_FALSE(aggr_report.explanations.empty());
  double interv_bound = 0, aggr_bound = 0;
  for (const auto& e : interv_report.explanations) {
    interv_bound += e.explanation.NumBound();
  }
  for (const auto& e : aggr_report.explanations) {
    aggr_bound += e.explanation.NumBound();
  }
  EXPECT_GE(aggr_bound / aggr_report.explanations.size() + 0.51,
            interv_bound / interv_report.explanations.size());
}

// End-to-end Figure 2: explaining the SIGMOD industrial bump surfaces the
// classic industrial labs / their prolific authors.
TEST(IntegrationTest, DblpBumpTopExplanations) {
  datagen::DblpOptions options;
  options.scale = 0.6;
  Database db = UnwrapOrDie(datagen::GenerateDblp(options));
  ExplainEngine engine = UnwrapOrDie(ExplainEngine::Create(&db));
  UserQuestion question = UnwrapOrDie(datagen::MakeDblpBumpQuestion(db));

  ExplainOptions explain;
  explain.top_k = 9;
  ExplainReport report = UnwrapOrDie(
      engine.Explain(question, {"Author.name", "Author.inst"}, explain));
  EXPECT_TRUE(report.additivity.additive) << report.additivity.reason;
  ASSERT_FALSE(report.explanations.empty());
  bool classic_lab =
      AnyExplanationMentions(report.explanations, db, "ibm.com") ||
      AnyExplanationMentions(report.explanations, db, "bell-labs.com") ||
      AnyExplanationMentions(report.explanations, db, "att.com") ||
      AnyExplanationMentions(report.explanations, db, "Rastogi") ||
      AnyExplanationMentions(report.explanations, db, "Pirahesh") ||
      AnyExplanationMentions(report.explanations, db, "Agrawal");
  EXPECT_TRUE(classic_lab) << report.ToString(db);
}

// End-to-end Figure 15: the UK SIGMOD/PODS anomaly is explained by the
// PODS-heavy UK institutions (or their authors).
TEST(IntegrationTest, UkPodsExplanations) {
  datagen::DblpOptions options;
  options.scale = 0.6;
  Database db = UnwrapOrDie(datagen::GenerateDblp(options));
  ExplainEngine engine = UnwrapOrDie(ExplainEngine::Create(&db));
  UserQuestion question = UnwrapOrDie(datagen::MakeUkPodsQuestion(db));

  ExplainOptions explain;
  explain.top_k = 6;
  ExplainReport report = UnwrapOrDie(engine.Explain(
      question, {"Author.name", "Author.inst", "Author.city"}, explain));
  ASSERT_FALSE(report.explanations.empty());
  bool uk_inst =
      AnyExplanationMentions(report.explanations, db, "Oxford") ||
      AnyExplanationMentions(report.explanations, db, "Edinburgh") ||
      AnyExplanationMentions(report.explanations, db, "Semmle");
  EXPECT_TRUE(uk_inst) << report.ToString(db);
}

// The engine agrees with itself across minimality strategies on real data.
TEST(IntegrationTest, StrategiesAgreeOnNatalityTop1) {
  datagen::NatalityOptions options;
  options.num_rows = 30000;
  Database db = UnwrapOrDie(datagen::GenerateNatality(options));
  ExplainEngine engine = UnwrapOrDie(ExplainEngine::Create(&db));
  UserQuestion question = UnwrapOrDie(datagen::MakeNatalityQMarital(db));
  std::vector<std::string> attrs = {"Birth.age", "Birth.tobacco",
                                    "Birth.education"};
  ExplainOptions self_join;
  self_join.minimality = MinimalityStrategy::kSelfJoin;
  self_join.min_support = 200;
  ExplainOptions append = self_join;
  append.minimality = MinimalityStrategy::kAppend;
  ExplainReport a = UnwrapOrDie(engine.Explain(question, attrs, self_join));
  ExplainReport b = UnwrapOrDie(engine.Explain(question, attrs, append));
  ASSERT_FALSE(a.explanations.empty());
  ASSERT_FALSE(b.explanations.empty());
  EXPECT_EQ(a.explanations[0].m_row, b.explanations[0].m_row);
}

}  // namespace
}  // namespace xplain
