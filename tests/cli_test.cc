#include "cli/cli.h"

#include <filesystem>
#include <sstream>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/xplain_cli_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Runs the CLI, asserting the expected exit code; returns stdout.
  std::string Run(const std::vector<std::string>& args, int expected_code) {
    std::ostringstream out, err;
    int code = cli::RunCli(args, out, err);
    EXPECT_EQ(code, expected_code)
        << "stdout: " << out.str() << "\nstderr: " << err.str();
    return out.str();
  }

  std::string dir_;
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  std::string help = Run({"help"}, 0);
  EXPECT_NE(help.find("usage:"), std::string::npos);
  Run({}, 1);
  Run({"frobnicate"}, 1);
}

TEST_F(CliTest, GenSchemaQueryFlow) {
  std::string gen = Run({"gen", "running-example", dir_}, 0);
  EXPECT_NE(gen.find("12 rows"), std::string::npos);

  std::string schema = Run({"schema", dir_}, 0);
  EXPECT_NE(schema.find("Authored.pubid <-> Publication.pubid"),
            std::string::npos);
  EXPECT_NE(schema.find("static convergence bound: 4"), std::string::npos);

  std::string query = Run({"query", dir_, "--agg", "count(*)"}, 0);
  EXPECT_NE(query.find("count(*) = 6"), std::string::npos);

  std::string filtered =
      Run({"query", dir_, "--agg", "count(distinct Publication.pubid)",
           "--where", "Author.dom = 'com'"},
          0);
  EXPECT_NE(filtered.find("= 3"), std::string::npos);
}

TEST_F(CliTest, InterveneShowsExample28) {
  Run({"gen", "running-example", dir_}, 0);
  std::string out = Run({"intervene", dir_, "--phi",
                         "Author.name = 'JG' AND Publication.year = 2001"},
                        0);
  EXPECT_NE(out.find("3 of 12 tuples"), std::string::npos);
  EXPECT_NE(out.find("Delta_Author: 0 tuples"), std::string::npos);
  EXPECT_NE(out.find("Delta_Publication: 1 tuples"), std::string::npos);
  EXPECT_NE(out.find("closed=yes semijoin_reduced=yes phi_free=yes"),
            std::string::npos);
}

TEST_F(CliTest, AskRanksExplanations) {
  Run({"gen", "running-example", dir_}, 0);
  std::string out = Run(
      {"ask", dir_, "--subquery",
       "q1|count(distinct Publication.pubid)|Publication.venue = 'SIGMOD'",
       "--subquery",
       "q2|count(distinct Publication.pubid)|Publication.venue = 'VLDB'",
       "--expr", "q1 / q2", "--direction", "high", "--attrs",
       "Author.name,Publication.year", "--topk", "2"},
      0);
  EXPECT_NE(out.find("[Publication.year = 2001]"), std::string::npos);
  EXPECT_NE(out.find("[Author.name = 'RR']"), std::string::npos);
  EXPECT_NE(out.find("cell-additive"), std::string::npos);
}

TEST_F(CliTest, AskSupportsAggravationAndNaive) {
  Run({"gen", "running-example", dir_}, 0);
  std::string aggr = Run(
      {"ask", dir_, "--subquery",
       "q1|count(distinct Publication.pubid)|Publication.venue = 'SIGMOD'",
       "--subquery",
       "q2|count(distinct Publication.pubid)|Publication.venue = 'VLDB'",
       "--expr", "q1 / q2", "--attrs", "Author.name", "--degree", "aggr",
       "--minimality", "selfjoin", "--naive"},
      0);
  EXPECT_NE(aggr.find("aggravation"), std::string::npos);
  EXPECT_NE(aggr.find("naive"), std::string::npos);
}

TEST_F(CliTest, AskHybridDegree) {
  Run({"gen", "running-example", dir_}, 0);
  std::string out = Run(
      {"ask", dir_, "--subquery", "q1|count(*)|Author.dom = 'com'",
       "--subquery", "q2|count(*)|Author.dom = 'edu'", "--expr", "q1 / q2",
       "--attrs", "Author.name", "--degree", "hybrid"},
      0);
  EXPECT_NE(out.find("hybrid"), std::string::npos);
  Run({"ask", dir_, "--subquery", "q1|count(*)|", "--expr", "q1", "--attrs",
       "Author.name", "--degree", "bogus"},
      1);
}

TEST_F(CliTest, GenDblpAndNatality) {
  Run({"gen", "dblp", dir_ + "/dblp", "--scale", "0.1"}, 0);
  std::string schema = Run({"schema", dir_ + "/dblp"}, 0);
  EXPECT_NE(schema.find("back-and-forth-keys=1"), std::string::npos);

  Run({"gen", "natality", dir_ + "/nat", "--rows", "500"}, 0);
  std::string count = Run({"query", dir_ + "/nat", "--agg", "count(*)"}, 0);
  EXPECT_NE(count.find("= 500"), std::string::npos);
}

TEST_F(CliTest, FlattenTransform) {
  Run({"gen", "running-example", dir_}, 0);
  std::string out =
      Run({"flatten", dir_, dir_ + "/flat", "--fanout", "2"}, 0);
  EXPECT_NE(out.find("no back-and-forth keys remain"), std::string::npos);
  std::string schema = Run({"schema", dir_ + "/flat"}, 0);
  EXPECT_NE(schema.find("Publication_flat"), std::string::npos);
  EXPECT_NE(schema.find("back-and-forth-keys=0"), std::string::npos);
  // Fanout too small for 2-author papers.
  Run({"flatten", dir_, dir_ + "/flat1", "--fanout", "1"}, 1);
  Run({"flatten", dir_}, 1);
}

TEST_F(CliTest, ErrorPaths) {
  Run({"gen", "nonsense", dir_}, 1);
  Run({"gen", "natality"}, 1);                       // missing dir
  Run({"schema", "/nonexistent/nowhere"}, 1);        // unreadable
  Run({"gen", "running-example", dir_}, 0);
  Run({"query", dir_}, 1);                           // missing --agg
  Run({"query", dir_, "--agg", "median(x)"}, 1);     // bad aggregate
  Run({"intervene", dir_, "--phi", "Nope.x = 1"}, 1);
  Run({"ask", dir_, "--expr", "q1"}, 1);             // missing subqueries
  Run({"ask", dir_, "--subquery", "q1-count-missing-pipes", "--expr", "q1",
       "--attrs", "Author.name"},
      1);
  Run({"query", dir_, "--agg"}, 1);                  // flag without value
}

}  // namespace
}  // namespace xplain
