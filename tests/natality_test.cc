#include "datagen/natality.h"

#include "gtest/gtest.h"
#include "relational/universal.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::UnwrapOrDie;
using datagen::GenerateNatality;
using datagen::NatalityOptions;

class NatalityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    NatalityOptions options;
    options.num_rows = 50000;
    db_ = new Database(UnwrapOrDie(GenerateNatality(options)));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
};

Database* NatalityTest::db_ = nullptr;

TEST_F(NatalityTest, ShapeAndDeterminism) {
  EXPECT_EQ(db_->num_relations(), 1);
  const Relation& birth = db_->RelationByName("Birth");
  EXPECT_EQ(birth.NumRows(), 50000u);
  EXPECT_EQ(birth.schema().num_attributes(), 11);
  XPLAIN_EXPECT_OK(birth.CheckPrimaryKeyUnique());

  // Deterministic by seed.
  NatalityOptions options;
  options.num_rows = 100;
  Database a = UnwrapOrDie(GenerateNatality(options));
  Database b = UnwrapOrDie(GenerateNatality(options));
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(TupleEq{}(a.RelationByName("Birth").row(i),
                          b.RelationByName("Birth").row(i)));
  }
  options.seed = 999;
  Database c = UnwrapOrDie(GenerateNatality(options));
  bool any_diff = false;
  for (size_t i = 0; i < 100 && !any_diff; ++i) {
    any_diff = !TupleEq{}(a.RelationByName("Birth").row(i),
                          c.RelationByName("Birth").row(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(NatalityTest, DomainsAreRecoded) {
  const Relation& birth = db_->RelationByName("Birth");
  int ap = birth.schema().FindAttribute("ap");
  int race = birth.schema().FindAttribute("race");
  EXPECT_EQ(birth.DistinctValues(ap).size(), 2u);
  EXPECT_EQ(birth.DistinctValues(race).size(), 4u);
  int prenatal = birth.schema().FindAttribute("prenatal");
  EXPECT_LE(birth.DistinctValues(prenatal).size(), 4u);
}

TEST_F(NatalityTest, PlantedEffectsMatchThePaper) {
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(*db_));
  auto count = [&](const char* where) {
    DnfPredicate phi = ::xplain::testing::Pred(*db_, where);
    return EvaluateAggregate(u, AggregateSpec::CountStar(), &phi)
        .AsNumeric();
  };
  // Figure 8's shape: the good/poor ratio is higher for Asian mothers than
  // for Black mothers.
  double asian_ratio = count("Birth.ap = 'good' AND Birth.race = 'Asian'") /
                       count("Birth.ap = 'poor' AND Birth.race = 'Asian'");
  double black_ratio = count("Birth.ap = 'good' AND Birth.race = 'Black'") /
                       count("Birth.ap = 'poor' AND Birth.race = 'Black'");
  EXPECT_GT(asian_ratio, black_ratio * 1.5);
  // Figure 9's shape: married ratio exceeds unmarried.
  double married =
      count("Birth.ap = 'good' AND Birth.marital = 'married'") /
      count("Birth.ap = 'poor' AND Birth.marital = 'married'");
  double unmarried =
      count("Birth.ap = 'good' AND Birth.marital = 'unmarried'") /
      count("Birth.ap = 'poor' AND Birth.marital = 'unmarried'");
  EXPECT_GT(married, unmarried * 1.15);
}

TEST_F(NatalityTest, QuestionBuilders) {
  UserQuestion q_race = UnwrapOrDie(datagen::MakeNatalityQRace(*db_));
  EXPECT_EQ(q_race.query.num_subqueries(), 2);
  EXPECT_EQ(q_race.direction, Direction::kHigh);
  double value = UnwrapOrDie(q_race.query.Evaluate(*db_));
  // The paper reports Q_Race(D) = 79.3; our synthetic model lands in the
  // same order of magnitude.
  EXPECT_GT(value, 20.0);
  EXPECT_LT(value, 400.0);

  UserQuestion q_marital = UnwrapOrDie(datagen::MakeNatalityQMarital(*db_));
  EXPECT_EQ(q_marital.query.num_subqueries(), 4);
  double marital_value = UnwrapOrDie(q_marital.query.Evaluate(*db_));
  // Paper: Q_Marital(D) = 1.46.
  EXPECT_GT(marital_value, 1.1);
  EXPECT_LT(marital_value, 3.0);

  UserQuestion q_prime = UnwrapOrDie(datagen::MakeNatalityQRacePrime(*db_));
  double prime_value = UnwrapOrDie(q_prime.query.Evaluate(*db_));
  EXPECT_GT(prime_value, 1.0);  // Asian ratio beats Black ratio
}

}  // namespace
}  // namespace xplain
