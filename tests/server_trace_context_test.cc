// End-to-end request-scoped tracing tests (DESIGN.md §12): a real TCP
// server with trace sampling enabled must produce a Chrome/Perfetto trace
// where each sampled request's spans — reactor dispatch, queue wait,
// cache probe, engine execution, response flush — share one request-scoped
// trace id, and a client-supplied wire trace context must win over the
// sampler. Assertions run on the exported JSON itself (parsed with the
// server's own JSON reader), so the exporter's output is what is checked.

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/random_db.h"
#include "server/json.h"
#include "server/service.h"
#include "server/tcp_client.h"
#include "server/tcp_server.h"
#include "tests/test_util.h"
#include "util/trace.h"

namespace xplain {
namespace server {
namespace {

using ::xplain::testing::UnwrapOrDie;

Database MakeDb() {
  datagen::RandomDbOptions options;
  options.seed = 5;
  options.schema = datagen::DbTemplate::kDblpLike;
  options.size = 10;
  return UnwrapOrDie(datagen::GenerateRandomDb(options));
}

/// A distinct EXPLAIN line per `id` (the where-clause varies, so repeated
/// calls do not collapse into cache hits), optionally carrying a wire
/// trace member.
std::string ExplainLine(uint64_t id, const std::string& trace_member = "") {
  std::string line = "{\"id\":" + std::to_string(id) +
                     ",\"op\":\"EXPLAIN\",\"question\":{\"subqueries\":["
                     "{\"name\":\"q1\",\"agg\":\"count(*)\","
                     "\"where\":\"va >= " +
                     std::to_string(id % 7) +
                     "\"}],\"expr\":\"q1\",\"direction\":\"high\"},"
                     "\"attrs\":[\"A.va\"]";
  if (!trace_member.empty()) line += ",\"trace\":" + trace_member;
  line += "}";
  return line;
}

/// Spans finish on pool workers slightly after the response line reaches
/// the client, so tests poll the snapshot for the expected number of
/// rpc.flush spans before asserting on the export.
void WaitForFlushSpans(size_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    size_t flushes = 0;
    for (const TraceEvent& event : Trace::Snapshot()) {
      if (std::string(event.name) == "rpc.flush") ++flushes;
    }
    if (flushes >= want) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ADD_FAILURE() << "timed out waiting for " << want << " rpc.flush spans";
}

/// Parses the exported Chrome JSON and groups span names by their
/// args.trace_id (hex string); untagged spans land under "".
std::map<std::string, std::set<std::string>> GroupSpansByTraceId(
    const std::string& json) {
  std::map<std::string, std::set<std::string>> groups;
  auto root = JsonValue::Parse(json);
  EXPECT_TRUE(root.ok()) << root.status().ToString();
  if (!root.ok()) return groups;
  const JsonValue* events = root->Find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events == nullptr || !events->is_array()) return groups;
  for (const JsonValue& event : events->array_items()) {
    EXPECT_EQ(event.GetString("ph", ""), "X");
    EXPECT_GE(event.GetNumber("ts", -1.0), 0.0);
    EXPECT_GE(event.GetNumber("dur", -1.0), 0.0);
    std::string trace_id;
    const JsonValue* args = event.Find("args");
    if (args != nullptr) trace_id = args->GetString("trace_id", "");
    groups[trace_id].insert(event.GetString("name", ""));
  }
  return groups;
}

class ServerTraceContextTest : public ::testing::Test {
 protected:
  void StartService(uint64_t sample_period) {
    ServiceOptions options;
    options.trace_sample_period = sample_period;
    service_ = UnwrapOrDie(XplaindService::Create(MakeDb(), options));
    server_ =
        UnwrapOrDie(TcpServer::Start(service_.get(), TcpServerOptions{}));
    ASSERT_GT(server_->port(), 0);
    if (sample_period == 0) Trace::Enable();  // wire-trace-only tests
    Trace::Clear();
  }

  void TearDown() override {
    server_.reset();
    service_.reset();
    Trace::Disable();
    Trace::Clear();
    Trace::SetPerThreadEventCap(0);
  }

  std::unique_ptr<XplaindService> service_;
  std::unique_ptr<TcpServer> server_;
};

// The acceptance scenario: a pipelined TCP run with 1-in-1 sampling. Every
// request gets its own server-assigned trace id, and each id's span set is
// a connected tree covering dispatch, queue wait, cache probe, engine
// execution, and response flush.
TEST_F(ServerTraceContextTest, SampledPipelinedRunYieldsConnectedSpanTrees) {
  StartService(/*sample_period=*/1);
  TcpClient client =
      UnwrapOrDie(TcpClient::Connect("127.0.0.1", server_->port()));
  constexpr uint64_t kRequests = 3;
  for (uint64_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.Send(ExplainLine(i + 1)).ok());
  }
  for (uint64_t i = 0; i < kRequests; ++i) {
    const std::string response = UnwrapOrDie(client.ReadResponse());
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  }
  WaitForFlushSpans(kRequests);

  const auto groups = GroupSpansByTraceId(Trace::ToChromeJson());
  size_t complete_trees = 0;
  for (const auto& [trace_id, names] : groups) {
    if (trace_id.empty()) continue;
    EXPECT_TRUE(names.count("rpc.dispatch")) << "trace " << trace_id;
    EXPECT_TRUE(names.count("rpc.flush")) << "trace " << trace_id;
    const bool complete =
        names.count("rpc.dispatch") && names.count("rpc.queue_wait") &&
        names.count("rpc.cache_probe") && names.count("rpc.execute") &&
        names.count("rpc.flush");
    bool has_engine_span = false;
    for (const std::string& name : names) {
      if (name.rfind("engine.", 0) == 0) has_engine_span = true;
    }
    if (complete && has_engine_span) ++complete_trees;
  }
  // Distinct server-assigned ids: one complete tree per request.
  EXPECT_EQ(complete_trees, kRequests);
}

TEST_F(ServerTraceContextTest, ClientSuppliedTraceIdTagsTheWholeTree) {
  StartService(/*sample_period=*/0);
  TcpClient client =
      UnwrapOrDie(TcpClient::Connect("127.0.0.1", server_->port()));
  const std::string response = UnwrapOrDie(
      client.Call(ExplainLine(1, "{\"id\":\"abc123\",\"sampled\":true}")));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  WaitForFlushSpans(1);

  const auto groups = GroupSpansByTraceId(Trace::ToChromeJson());
  ASSERT_TRUE(groups.count("abc123")) << Trace::ToChromeJson();
  const std::set<std::string>& names = groups.at("abc123");
  EXPECT_TRUE(names.count("rpc.dispatch"));
  EXPECT_TRUE(names.count("rpc.queue_wait"));
  EXPECT_TRUE(names.count("rpc.execute"));
  EXPECT_TRUE(names.count("rpc.flush"));
}

TEST_F(ServerTraceContextTest, UnsampledWireTraceSuppressesSpans) {
  StartService(/*sample_period=*/0);
  TcpClient client =
      UnwrapOrDie(TcpClient::Connect("127.0.0.1", server_->port()));
  const std::string response = UnwrapOrDie(
      client.Call(ExplainLine(1, "{\"id\":\"dead\",\"sampled\":false}")));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  // The request executed but must not have recorded a single span.
  const auto groups = GroupSpansByTraceId(Trace::ToChromeJson());
  EXPECT_FALSE(groups.count("dead")) << Trace::ToChromeJson();
}

TEST_F(ServerTraceContextTest, CacheHitTreeSkipsTheWorkerSpans) {
  StartService(/*sample_period=*/0);
  TcpClient client =
      UnwrapOrDie(TcpClient::Connect("127.0.0.1", server_->port()));
  // First request computes (trace "aa"), the identical second one is a
  // cache hit (trace "bb") — same canonical key, the trace member is not
  // part of it.
  ASSERT_TRUE(UnwrapOrDie(client.Call(ExplainLine(
                              1, "{\"id\":\"aa\",\"sampled\":true}")))
                  .find("\"ok\":true") != std::string::npos);
  WaitForFlushSpans(1);
  ASSERT_TRUE(UnwrapOrDie(client.Call(ExplainLine(
                              1, "{\"id\":\"bb\",\"sampled\":true}")))
                  .find("\"ok\":true") != std::string::npos);
  WaitForFlushSpans(2);

  const auto groups = GroupSpansByTraceId(Trace::ToChromeJson());
  ASSERT_TRUE(groups.count("aa"));
  ASSERT_TRUE(groups.count("bb"));
  EXPECT_TRUE(groups.at("aa").count("rpc.execute"));
  const std::set<std::string>& hit = groups.at("bb");
  EXPECT_TRUE(hit.count("rpc.dispatch"));
  EXPECT_TRUE(hit.count("rpc.cache_probe"));
  EXPECT_TRUE(hit.count("rpc.flush"));
  EXPECT_FALSE(hit.count("rpc.execute"));
  EXPECT_FALSE(hit.count("rpc.queue_wait"));
}

}  // namespace
}  // namespace server
}  // namespace xplain
