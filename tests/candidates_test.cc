#include "core/candidates.h"

#include "gtest/gtest.h"
#include "relational/parser.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::Pred;
using ::xplain::testing::UnwrapOrDie;

class CandidatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildRunningExample();
    universal_ = std::make_unique<UniversalRelation>(
        UnwrapOrDie(UniversalRelation::Build(db_)));
    engine_ = std::make_unique<InterventionEngine>(universal_.get());

    // Q = #SIGMOD / #VLDB publications, dir = high.
    AggregateQuery q1, q2;
    q1.name = "q1";
    q1.agg =
        AggregateSpec::CountDistinct(*db_.ResolveColumn("Publication.pubid"));
    q1.where = Pred(db_, "Publication.venue = 'SIGMOD'");
    q2 = q1;
    q2.name = "q2";
    q2.where = Pred(db_, "Publication.venue = 'VLDB'");
    ExprPtr expr = UnwrapOrDie(ParseExpression("q1 / q2", {"q1", "q2"}));
    question_.query = UnwrapOrDie(NumericalQuery::Create({q1, q2}, expr));
    question_.direction = Direction::kHigh;
  }

  Database db_;
  std::unique_ptr<UniversalRelation> universal_;
  std::unique_ptr<InterventionEngine> engine_;
  UserQuestion question_;
};

TEST_F(CandidatesTest, RangeCandidatesOverYear) {
  ColumnRef year = *db_.ResolveColumn("Publication.year");
  RangeCandidateOptions options;
  options.num_buckets = 2;
  std::vector<ConjunctivePredicate> ranges =
      UnwrapOrDie(GenerateRangeCandidates(*universal_, year, options));
  // Years over U: 2001 x4, 2011 x2 -> buckets [2001,2001], [2001,2011] or
  // [2011,2011] depending on split; at least one candidate, each a
  // two-atom range.
  ASSERT_FALSE(ranges.empty());
  for (const ConjunctivePredicate& range : ranges) {
    ASSERT_EQ(range.atoms().size(), 2u);
    EXPECT_EQ(range.atoms()[0].op, CompareOp::kGe);
    EXPECT_EQ(range.atoms()[1].op, CompareOp::kLe);
  }
}

TEST_F(CandidatesTest, RangeCandidatesRejectNonNumeric) {
  ColumnRef name = *db_.ResolveColumn("Author.name");
  EXPECT_FALSE(GenerateRangeCandidates(*universal_, name).ok());
  ColumnRef year = *db_.ResolveColumn("Publication.year");
  RangeCandidateOptions bad;
  bad.num_buckets = 0;
  EXPECT_FALSE(GenerateRangeCandidates(*universal_, year, bad).ok());
}

TEST_F(CandidatesTest, MultiscaleEmitsMergedRuns) {
  // A numeric column with 4 clear buckets.
  auto schema = RelationSchema::Create("T", {{"v", DataType::kInt64}}, {"v"});
  Relation t(std::move(*schema));
  for (int i = 0; i < 16; ++i) t.AppendUnchecked({Value::Int(i)});
  Database db;
  XPLAIN_ASSERT_OK(db.AddRelation(std::move(t)));
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  RangeCandidateOptions options;
  options.num_buckets = 4;
  std::vector<ConjunctivePredicate> ranges = UnwrapOrDie(
      GenerateRangeCandidates(u, ColumnRef{0, 0}, options));
  // 4 base buckets + merged runs (1-2, 2-3, 3-4, 1-3, 2-4) minus the full
  // span = 4 + 5 = 9.
  EXPECT_EQ(ranges.size(), 9u);
  options.multiscale = false;
  ranges = UnwrapOrDie(GenerateRangeCandidates(u, ColumnRef{0, 0}, options));
  EXPECT_EQ(ranges.size(), 4u);
}

TEST_F(CandidatesTest, DisjunctionCandidatesFromTopCells) {
  std::vector<ColumnRef> attrs = {*db_.ResolveColumn("Author.name")};
  TableM table = UnwrapOrDie(ComputeTableM(*universal_, question_, attrs));
  std::vector<DnfPredicate> pairs =
      GenerateDisjunctionCandidates(table, DegreeKind::kIntervention, 3);
  // 3 top cells -> 3 pairs.
  ASSERT_EQ(pairs.size(), 3u);
  for (const DnfPredicate& p : pairs) {
    EXPECT_EQ(p.disjuncts().size(), 2u);
  }
}

TEST_F(CandidatesTest, ExactScoringRanksRangesSensibly) {
  ColumnRef year = *db_.ResolveColumn("Publication.year");
  RangeCandidateOptions options;
  options.num_buckets = 2;
  std::vector<ConjunctivePredicate> ranges =
      UnwrapOrDie(GenerateRangeCandidates(*universal_, year, options));
  std::vector<DnfPredicate> candidates;
  for (const ConjunctivePredicate& range : ranges) {
    candidates.push_back(range);
  }
  std::vector<ScoredCandidate> scored = UnwrapOrDie(
      ScoreCandidatesExact(*engine_, question_, candidates));
  ASSERT_EQ(scored.size(), candidates.size());
  // Sorted descending.
  for (size_t i = 1; i < scored.size(); ++i) {
    EXPECT_GE(scored[i - 1].degree, scored[i].degree);
  }
  // The best range must cover 2001 (removing the SIGMOD years inhibits Q).
  const DnfPredicate& best = scored.front().predicate;
  ASSERT_EQ(best.disjuncts().size(), 1u);
  EXPECT_TRUE(best.disjuncts()[0].atoms()[0].Eval(Value::Int(2001)));
}

TEST_F(CandidatesTest, ExactScoringAggravationKind) {
  std::vector<DnfPredicate> candidates = {
      Pred(db_, "Author.dom = 'com'"),
      Pred(db_, "Author.dom = 'edu'"),
  };
  std::vector<ScoredCandidate> scored = UnwrapOrDie(ScoreCandidatesExact(
      *engine_, question_, candidates, DegreeKind::kAggravation));
  ASSERT_EQ(scored.size(), 2u);
  // Restricting to com authors keeps both SIGMOD papers and drops the edu
  // VLDB share less than restricting to edu does -- com aggravates more.
  EXPECT_GT(scored[0].degree, scored[1].degree);
  ASSERT_EQ(scored[0].predicate.disjuncts().size(), 1u);
  EXPECT_EQ(scored[0].predicate.ToString(db_), "[Author.dom = 'com']");
}

TEST_F(CandidatesTest, DisjunctionBeatsItsParts) {
  // [JG OR RR] removes P1, P2, P3 entirely; each singleton leaves a paper.
  DnfPredicate jg = Pred(db_, "Author.name = 'JG'");
  DnfPredicate rr = Pred(db_, "Author.name = 'RR'");
  DnfPredicate both = UnwrapOrDie(ParseDnfPredicate(
      db_, "Author.name = 'JG' OR Author.name = 'RR'"));
  std::vector<ScoredCandidate> scored = UnwrapOrDie(
      ScoreCandidatesExact(*engine_, question_, {jg, rr, both}));
  // With dir=high, mu_interv = -Q(D-Delta). Removing JG leaves P3 (SIGMOD)
  // -> Q explodes -> strongly negative degree; removing RR or the
  // disjunction zeroes the SIGMOD count -> degree 0, the best possible.
  ASSERT_EQ(scored.size(), 3u);
  EXPECT_DOUBLE_EQ(scored[0].degree, 0.0);
  EXPECT_DOUBLE_EQ(scored[1].degree, 0.0);
  EXPECT_LT(scored[2].degree, -1.0);  // JG alone is the worst
  EXPECT_EQ(scored[2].predicate.ToString(db_), "[Author.name = 'JG']");
}

}  // namespace
}  // namespace xplain
