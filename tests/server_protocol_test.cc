#include "server/protocol.h"

#include <string>

#include <gtest/gtest.h>

#include "server/json.h"
#include "tests/test_util.h"

namespace xplain {
namespace server {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::UnwrapOrDie;

constexpr char kExplainLine[] =
    R"x({"id":7,"op":"EXPLAIN","question":{"subqueries":[)x"
    R"x({"name":"q1","agg":"count(distinct Publication.pubid)","where":"venue = 'SIGMOD'"},)x"
    R"x({"name":"q2","agg":"count(distinct Publication.pubid)","where":"venue = 'PODS'"}],)x"
    R"x("expr":"q1 / q2","direction":"low"},)x"
    R"x("attrs":["Author.name","Author.inst"],)x"
    R"x("options":{"top_k":5,"degree":"aggr","use_cube":false}})x";

TEST(JsonTest, ParsesScalarsStringsAndNesting) {
  JsonValue v = UnwrapOrDie(JsonValue::Parse(
      R"x({"a":1.5,"b":"x\nA","c":[true,false,null],"d":{"e":-2}})x"));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.GetNumber("a", 0), 1.5);
  EXPECT_EQ(v.GetString("b", ""), "x\nA");
  const JsonValue* c = v.Find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->is_array());
  ASSERT_EQ(c->array_items().size(), 3u);
  EXPECT_TRUE(c->array_items()[0].bool_value());
  EXPECT_TRUE(c->array_items()[2].is_null());
  EXPECT_EQ(v.Find("d")->GetNumber("e", 0), -2.0);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
}

TEST(JsonTest, StringEscaping) {
  std::string out;
  AppendJsonString("a\"b\\c\nd\te\x01", &out);
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonTest, NumbersRoundTripShortest) {
  std::string out;
  AppendJsonNumber(2.5, &out);
  EXPECT_EQ(out, "2.5");
  out.clear();
  AppendJsonNumber(3.0, &out);
  EXPECT_EQ(out, "3");
  out.clear();
  AppendJsonNumber(1.0 / 3.0, &out);
  // Must parse back to the exact same double.
  EXPECT_EQ(std::stod(out), 1.0 / 3.0);
}

TEST(ProtocolTest, ParsesFullExplainRequest) {
  Request request = UnwrapOrDie(ParseRequest(kExplainLine));
  EXPECT_EQ(request.id, 7u);
  EXPECT_EQ(request.op, RequestOp::kExplain);
  ASSERT_EQ(request.subqueries.size(), 2u);
  EXPECT_EQ(request.subqueries[0].name, "q1");
  EXPECT_EQ(request.subqueries[1].where, "venue = 'PODS'");
  EXPECT_EQ(request.expr, "q1 / q2");
  EXPECT_EQ(request.direction, "low");
  ASSERT_EQ(request.attrs.size(), 2u);
  EXPECT_EQ(request.attrs[0], "Author.name");
  EXPECT_EQ(request.options.top_k, 5u);
  EXPECT_EQ(request.options.degree, DegreeKind::kAggravation);
  EXPECT_FALSE(request.options.use_cube);
  // The serving default: one engine thread per request.
  EXPECT_EQ(request.options.num_threads, 1);
}

TEST(ProtocolTest, OpIsCaseInsensitiveAndStatsNeedsNoQuestion) {
  Request stats = UnwrapOrDie(ParseRequest(R"x({"id":1,"op":"stats"})x"));
  EXPECT_EQ(stats.op, RequestOp::kStats);
  Request drain = UnwrapOrDie(ParseRequest(R"x({"op":"Drain"})x"));
  EXPECT_EQ(drain.op, RequestOp::kDrain);
  EXPECT_EQ(drain.id, 0u);
}

TEST(ProtocolTest, RejectsStructurallyInvalidRequests) {
  // Every rejection is a Status, never a crash.
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[1,2]").ok());
  EXPECT_FALSE(ParseRequest(R"x({"id":1})x").ok());            // no op
  EXPECT_FALSE(ParseRequest(R"x({"op":"FROB"})x").ok());       // unknown op
  EXPECT_FALSE(ParseRequest(R"x({"op":"EXPLAIN"})x").ok());    // no question
  EXPECT_FALSE(
      ParseRequest(R"x({"op":"EXPLAIN","question":{"subqueries":[]}})x").ok());
  EXPECT_FALSE(
      ParseRequest(
          R"x({"op":"EXPLAIN","question":{"subqueries":[{"name":"q1",)x"
          R"x("agg":"count(*)","where":""}],"expr":"q1"}})x")
          .ok());  // missing attrs
  EXPECT_FALSE(
      ParseRequest(
          R"x({"op":"EXPLAIN","question":{"subqueries":[{"name":"q1",)x"
          R"x("agg":"count(*)","where":""}],"expr":"q1","direction":"up"},)x"
          R"x("attrs":["Author.name"]})x")
          .ok());  // bad direction
  EXPECT_FALSE(ParseRequest(
                   R"x({"op":"STATS","id":-3})x")
                   .ok());  // negative id
}

TEST(ProtocolTest, RejectsBadOptionValues) {
  const std::string prefix =
      R"x({"op":"TOPK","question":{"subqueries":[{"name":"q1",)x"
      R"x("agg":"count(*)","where":""}],"expr":"q1"},"attrs":["Author.name"],)x";
  EXPECT_FALSE(ParseRequest(prefix + R"x("options":{"top_k":-1}})x").ok());
  EXPECT_FALSE(ParseRequest(prefix + R"x("options":{"top_k":1.5}})x").ok());
  EXPECT_FALSE(
      ParseRequest(prefix + R"x("options":{"degree":"sideways"}})x").ok());
  EXPECT_FALSE(
      ParseRequest(prefix + R"x("options":{"minimality":"max"}})x").ok());
  EXPECT_FALSE(
      ParseRequest(prefix + R"x("options":{"min_support":-0.5}})x").ok());
  EXPECT_FALSE(ParseRequest(prefix + R"x("options":42})x").ok());
}

TEST(ProtocolTest, ExtractRequestIdIsBestEffort) {
  EXPECT_EQ(ExtractRequestId(R"x({"id":42,"op":"junk"})x"), 42u);
  EXPECT_EQ(ExtractRequestId("completely broken {"), 0u);
  EXPECT_EQ(ExtractRequestId(R"x({"op":"STATS"})x"), 0u);
}

TEST(ProtocolTest, BuildQuestionResolvesAgainstDatabase) {
  Database db = BuildRunningExample();
  Request request = UnwrapOrDie(ParseRequest(kExplainLine));
  UserQuestion question = UnwrapOrDie(BuildQuestion(db, request));
  EXPECT_EQ(question.direction, Direction::kLow);
  // Unknown column in the where clause surfaces as a Status.
  request.subqueries[0].where = "nosuchcol = 1";
  EXPECT_FALSE(BuildQuestion(db, request).ok());
}

TEST(ProtocolTest, ErrorPayloadCarriesCodeAndMessage) {
  const std::string payload =
      ErrorPayload(Status::ResourceExhausted("queue full"));
  EXPECT_EQ(payload,
            "\"ok\":false,\"code\":\"ResourceExhausted\","
            "\"error\":\"queue full\"");
  const std::string response = MakeResponse(9, payload);
  EXPECT_EQ(response.front(), '{');
  EXPECT_EQ(response.back(), '}');
  EXPECT_NE(response.find("\"id\":9"), std::string::npos);
  // The response is itself valid JSON.
  EXPECT_TRUE(JsonValue::Parse(response).ok());
}

TEST(ProtocolTest, CanonicalKeyIsInjectiveAcrossFieldBoundaries) {
  Request a = UnwrapOrDie(ParseRequest(kExplainLine));
  Request b = a;
  EXPECT_EQ(CanonicalRequestKey(a), CanonicalRequestKey(b));
  // Different op, same computation inputs: different key.
  b.op = RequestOp::kTopK;
  EXPECT_NE(CanonicalRequestKey(a), CanonicalRequestKey(b));
  // Options that change the result change the key.
  b = a;
  b.options.top_k = 6;
  EXPECT_NE(CanonicalRequestKey(a), CanonicalRequestKey(b));
  b = a;
  b.options.use_cube = true;
  EXPECT_NE(CanonicalRequestKey(a), CanonicalRequestKey(b));
  // num_threads does not affect results (DESIGN.md §6) so it is excluded.
  b = a;
  b.options.num_threads = 8;
  EXPECT_EQ(CanonicalRequestKey(a), CanonicalRequestKey(b));
  // Field shuffling cannot collide: moving a suffix of one field into the
  // next field produces a different key thanks to length prefixes.
  b = a;
  b.subqueries[0].name = "q1x";
  Request c = a;
  c.subqueries[0].agg = "x" + c.subqueries[0].agg;
  EXPECT_NE(CanonicalRequestKey(b), CanonicalRequestKey(c));
}

TEST(ProtocolTest, ParsesClusterMembers) {
  Request request = UnwrapOrDie(ParseRequest(
      R"x({"id":1,"op":"EXPLAIN","partial":true,"expect_version":42,)x"
      R"x("question":{"subqueries":[{"name":"q1","agg":"count(*)",)x"
      R"x("where":""}],"expr":"q1","direction":"high"},)x"
      R"x("attrs":["Author.name"]})x"));
  EXPECT_TRUE(request.partial);
  EXPECT_TRUE(request.has_expect_version);
  EXPECT_EQ(request.expect_version, 42u);

  // partial and rescore_cells are mutually exclusive.
  EXPECT_FALSE(
      ParseRequest(
          R"x({"id":1,"op":"EXPLAIN","partial":true,)x"
          R"x("rescore_cells":[[null]],)x"
          R"x("question":{"subqueries":[{"name":"q1","agg":"count(*)",)x"
          R"x("where":""}],"expr":"q1","direction":"high"},)x"
          R"x("attrs":["Author.name"]})x")
          .ok());

  Request stats = UnwrapOrDie(
      ParseRequest(R"x({"id":2,"op":"STATS","schema":true})x"));
  EXPECT_TRUE(stats.want_schema);
}

TEST(ProtocolTest, SerializeRequestRoundTripsFieldForField) {
  Request request = UnwrapOrDie(ParseRequest(kExplainLine));
  request.partial = true;
  request.has_expect_version = true;
  request.expect_version = 7;
  request.has_trace = true;
  request.trace_id = 0x1234;
  request.trace_sampled = true;
  Tuple cell(2);
  cell[0] = Value::Str("JG");
  cell[1] = Value::Null();
  request.partial = false;  // rescore_cells excludes partial
  request.rescore_cells = {cell};

  const std::string line = SerializeRequest(request);
  Request round = UnwrapOrDie(ParseRequest(line));
  EXPECT_EQ(round.id, request.id);
  EXPECT_EQ(round.op, request.op);
  EXPECT_EQ(round.expr, request.expr);
  EXPECT_EQ(round.direction, request.direction);
  EXPECT_EQ(round.attrs, request.attrs);
  ASSERT_EQ(round.subqueries.size(), request.subqueries.size());
  for (size_t i = 0; i < round.subqueries.size(); ++i) {
    EXPECT_EQ(round.subqueries[i].name, request.subqueries[i].name);
    EXPECT_EQ(round.subqueries[i].agg, request.subqueries[i].agg);
    EXPECT_EQ(round.subqueries[i].where, request.subqueries[i].where);
  }
  EXPECT_EQ(round.partial, request.partial);
  EXPECT_EQ(round.has_expect_version, request.has_expect_version);
  EXPECT_EQ(round.expect_version, request.expect_version);
  EXPECT_EQ(round.has_trace, request.has_trace);
  EXPECT_EQ(round.trace_id, request.trace_id);
  EXPECT_EQ(round.trace_sampled, request.trace_sampled);
  ASSERT_EQ(round.rescore_cells.size(), 1u);
  EXPECT_EQ(round.rescore_cells[0], cell);
  // Serialization is deterministic (and covers the options block): a second
  // round trip is byte-identical.
  EXPECT_EQ(SerializeRequest(round), line);
}

TEST(ProtocolTest, WireValuesRoundTripEveryTypeInjectively) {
  const std::vector<Value> values = {
      Value::Null(),        Value::Bool(true),      Value::Bool(false),
      Value::Int(0),        Value::Int(-7),         Value::Int(1),
      Value::Real(1.0),     Value::Real(-0.25),     Value::Str(""),
      Value::Str("1"),      Value::Str("P1"),       Value::Str("a\"b\n")};
  for (const Value& value : values) {
    std::string out;
    AppendWireValue(value, &out);
    JsonValue json = UnwrapOrDie(JsonValue::Parse(out));
    const Value round = UnwrapOrDie(ParseWireValue(json));
    EXPECT_TRUE(round.Equals(value)) << out;
    EXPECT_EQ(round.type(), value.type()) << out;
  }
  // Int64 1 and double 1.0 must not collide on the wire (the type tag).
  std::string as_int, as_dbl;
  AppendWireValue(Value::Int(1), &as_int);
  AppendWireValue(Value::Real(1.0), &as_dbl);
  EXPECT_NE(as_int, as_dbl);
}

TEST(ProtocolTest, CanonicalKeySeparatesPartialFromFull) {
  Request a = UnwrapOrDie(ParseRequest(kExplainLine));
  Request b = a;
  b.partial = true;
  EXPECT_NE(CanonicalRequestKey(a), CanonicalRequestKey(b));
}

}  // namespace
}  // namespace server
}  // namespace xplain
