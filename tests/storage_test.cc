#include "relational/storage.h"

#include <filesystem>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::UnwrapOrDie;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/xplain_storage_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(StorageTest, SaveAndLoadRoundTrips) {
  Database db = BuildRunningExample();
  XPLAIN_ASSERT_OK(SaveDatabase(db, dir_));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/schema.ddl"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/Author.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/Authored.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/Publication.csv"));

  Database loaded = UnwrapOrDie(LoadDatabase(dir_));
  EXPECT_EQ(loaded.num_relations(), 3);
  EXPECT_EQ(loaded.TotalRows(), db.TotalRows());
  EXPECT_EQ(loaded.foreign_keys().size(), 2u);
  EXPECT_TRUE(loaded.HasBackAndForthKeys());
  // Row contents survive.
  const Relation& author = loaded.RelationByName("Author");
  EXPECT_EQ(author.at(0, 1).AsString(), "JG");
  const Relation& pub = loaded.RelationByName("Publication");
  EXPECT_EQ(pub.at(0, 1).AsInt(), 2001);
}

TEST_F(StorageTest, LoadChecksIntegrity) {
  Database db = BuildRunningExample();
  // Inject a dangling Authored row before saving.
  db.mutable_relation(1)->AppendUnchecked(
      {Value::Str("A9"), Value::Str("P1")});
  XPLAIN_ASSERT_OK(SaveDatabase(db, dir_));
  EXPECT_FALSE(LoadDatabase(dir_).ok());
  LoadOptions lax;
  lax.check_integrity = false;
  lax.semijoin_reduce = false;
  Database loaded = UnwrapOrDie(LoadDatabase(dir_, lax));
  EXPECT_EQ(loaded.RelationByName("Authored").NumRows(), 7u);
}

TEST_F(StorageTest, LoadSemijoinReduces) {
  Database db = BuildRunningExample();
  // An author with no papers: integrity holds but consistency does not.
  db.mutable_relation(0)->AppendUnchecked({Value::Str("A9"), Value::Str("X"),
                                           Value::Str("n.edu"),
                                           Value::Str("edu")});
  XPLAIN_ASSERT_OK(SaveDatabase(db, dir_));
  Database loaded = UnwrapOrDie(LoadDatabase(dir_));
  EXPECT_EQ(loaded.RelationByName("Author").NumRows(), 3u);
  LoadOptions keep;
  keep.semijoin_reduce = false;
  Database raw = UnwrapOrDie(LoadDatabase(dir_, keep));
  EXPECT_EQ(raw.RelationByName("Author").NumRows(), 4u);
}

TEST_F(StorageTest, MissingDirectoryFails) {
  EXPECT_FALSE(LoadDatabase("/nonexistent/nowhere").ok());
}

TEST_F(StorageTest, NullsAndQuotingSurvive) {
  auto schema = RelationSchema::Create(
      "T", {{"k", DataType::kInt64}, {"v", DataType::kString}}, {"k"});
  Relation t(std::move(*schema));
  t.AppendUnchecked({Value::Int(1), Value::Str("a,b \"q\"")});
  t.AppendUnchecked({Value::Int(2), Value::Null()});
  Database db;
  XPLAIN_ASSERT_OK(db.AddRelation(std::move(t)));
  XPLAIN_ASSERT_OK(SaveDatabase(db, dir_));
  Database loaded = UnwrapOrDie(LoadDatabase(dir_));
  EXPECT_EQ(loaded.RelationByName("T").at(0, 1).AsString(), "a,b \"q\"");
  EXPECT_TRUE(loaded.RelationByName("T").at(1, 1).is_null());
}

}  // namespace
}  // namespace xplain
