// Unit tests for util/thread_pool.h: Submit value/error propagation,
// exception-to-Status translation, graceful shutdown under pending work,
// submit-after-shutdown rejection, and ParallelShards coverage/error
// semantics. Run under the tsan preset to validate the locking.

#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace xplain {
namespace {

TEST(ThreadPoolTest, DefaultNumThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

TEST(ThreadPoolTest, ReportsRequestedThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  ThreadPool clamped(-7);
  EXPECT_EQ(clamped.num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitPropagatesResultValue) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> Result<int> { return 41 + 1; });
  Result<int> result = future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesStatusError) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> Status { return Status::InvalidArgument("bad shard"); });
  Status status = future.get();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("bad shard"), std::string::npos);
}

TEST(ThreadPoolTest, ThrownExceptionBecomesInternalStatus) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> Status { throw std::runtime_error("boom"); });
  Status status = future.get();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("boom"), std::string::npos);
}

TEST(ThreadPoolTest, ThrownExceptionInResultTaskBecomesError) {
  ThreadPool pool(1);
  auto future = pool.Submit(
      []() -> Result<int> { throw std::runtime_error("kapow"); });
  Result<int> result = future.get();
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("kapow"), std::string::npos);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingWork) {
  // Queue far more tasks than workers, then shut down immediately: every
  // queued task must still run (graceful drain) and every future resolve.
  std::atomic<int> executed{0};
  std::vector<std::future<Status>> futures;
  ThreadPool pool(2);
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&executed]() -> Status {
      executed.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }));
  }
  pool.Shutdown();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // second call must be a no-op, not a double join
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(1);
  pool.Shutdown();
  auto future = pool.Submit([]() -> Status { return Status::OK(); });
  Status status = future.get();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("Shutdown"), std::string::npos);
}

TEST(ThreadPoolTest, DestructorJoinsWithoutExplicitShutdown) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      // Futures intentionally dropped: destruction must still drain.
      auto f = pool.Submit([&executed]() -> Status {
        executed.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      });
      (void)f;
    }
  }
  EXPECT_EQ(executed.load(), 16);
}

TEST(ParallelShardsTest, NullPoolRunsInlineAsSingleShard) {
  std::vector<int> shards;
  Status status =
      ParallelShards(nullptr, 10, [&](int shard, size_t begin, size_t end) {
        shards.push_back(shard);
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 10u);
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(shards, std::vector<int>({0}));
}

TEST(ParallelShardsTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1013;  // deliberately not a multiple of the shard count
  std::vector<std::atomic<int>> hits(n);
  Status status =
      ParallelShards(&pool, n, [&](int, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelShardsTest, ShardLocalAccumulatorsSumExactly) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<int64_t> locals(pool.num_threads(), 0);
  Status status =
      ParallelShards(&pool, n, [&](int shard, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          locals[shard] += static_cast<int64_t>(i);
        }
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  const int64_t total = std::accumulate(locals.begin(), locals.end(),
                                        static_cast<int64_t>(0));
  EXPECT_EQ(total, static_cast<int64_t>(n) * (n - 1) / 2);
}

TEST(ParallelShardsTest, ReturnsLowestShardError) {
  ThreadPool pool(4);
  Status status =
      ParallelShards(&pool, 100, [&](int shard, size_t, size_t) -> Status {
        if (shard >= 1) {
          return Status::InvalidArgument("shard " + std::to_string(shard));
        }
        return Status::OK();
      });
  EXPECT_FALSE(status.ok());
  // Deterministic error selection: the lowest failing shard index wins
  // regardless of completion order.
  EXPECT_NE(status.ToString().find("shard 1"), std::string::npos)
      << status.ToString();
}

TEST(ParallelShardsTest, EmptyRangeRunsInline) {
  ThreadPool pool(4);
  int calls = 0;
  Status status = ParallelShards(&pool, 0, [&](int, size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, end);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace xplain
