#include "core/engine.h"

#include "gtest/gtest.h"
#include "relational/parser.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::Pred;
using ::xplain::testing::UnwrapOrDie;

// Q = (#SIGMOD papers) / (#VLDB papers) = 2, dir = high. The WHERE
// predicates stay on the counted Publication relation, so the question is
// cell-exact additive (CheckCellAdditivity) and the cube path applies
// without rescoring.
UserQuestion MakeVenueRatioQuestion(const Database& db) {
  AggregateQuery q1, q2;
  q1.name = "q1";
  q1.agg =
      AggregateSpec::CountDistinct(*db.ResolveColumn("Publication.pubid"));
  q1.where =
      UnwrapOrDie(ParsePredicate(db, "Publication.venue = 'SIGMOD'"));
  q2 = q1;
  q2.name = "q2";
  q2.where = UnwrapOrDie(ParsePredicate(db, "Publication.venue = 'VLDB'"));
  ExprPtr expr = UnwrapOrDie(ParseExpression("q1 / q2", {"q1", "q2"}));
  return UserQuestion{
      UnwrapOrDie(NumericalQuery::Create({q1, q2}, expr)),
      Direction::kHigh};
}

TEST(EngineTest, CreateValidates) {
  Database db = BuildRunningExample();
  ExplainEngine engine = UnwrapOrDie(ExplainEngine::Create(&db));
  EXPECT_EQ(engine.universal().NumRows(), 6u);
  EXPECT_FALSE(ExplainEngine::Create(nullptr).ok());

  Database broken = BuildRunningExample();
  broken.mutable_relation(1)->AppendUnchecked(
      {Value::Str("A9"), Value::Str("P1")});
  EXPECT_FALSE(ExplainEngine::Create(&broken).ok());
}

TEST(EngineTest, ResolveAttributes) {
  Database db = BuildRunningExample();
  ExplainEngine engine = UnwrapOrDie(ExplainEngine::Create(&db));
  auto attrs = engine.ResolveAttributes({"Author.name", "venue"});
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size(), 2u);
  EXPECT_FALSE(engine.ResolveAttributes({"nope"}).ok());
}

TEST(EngineTest, ExplainAdditiveQuestionUsesCube) {
  Database db = BuildRunningExample();
  ExplainEngine engine = UnwrapOrDie(ExplainEngine::Create(&db));
  UserQuestion question = MakeVenueRatioQuestion(db);
  ExplainOptions options;
  options.top_k = 3;
  ExplainReport report = UnwrapOrDie(
      engine.Explain(question, {"Author.name", "Publication.year"}, options));
  EXPECT_TRUE(report.additivity.additive) << report.additivity.reason;
  EXPECT_FALSE(report.exact_rescored);
  EXPECT_DOUBLE_EQ(report.original_value, 2.0);
  ASSERT_GE(report.explanations.size(), 2u);
  // Two interventions fully erase the com SIGMOD papers (degree 0, the
  // maximum): removing year 2001 and removing RR. Ties prefer the
  // lexicographically-first cell.
  EXPECT_DOUBLE_EQ(report.explanations[0].degree, 0.0);
  EXPECT_EQ(report.explanations[0].explanation.ToString(db),
            "[Publication.year = 2001]");
  EXPECT_EQ(report.explanations[1].explanation.ToString(db),
            "[Author.name = 'RR']");
  // Cube degrees must match the exact fixpoint degrees (additivity).
  for (const RankedExplanation& e : report.explanations) {
    double exact = UnwrapOrDie(InterventionDegreeExact(
        engine.intervention(), question, e.explanation.predicate()));
    EXPECT_DOUBLE_EQ(e.degree, exact) << e.explanation.ToString(db);
  }
  EXPECT_NE(report.ToString(db).find("RR"), std::string::npos);
}

TEST(EngineTest, ExplainByAggravation) {
  Database db = BuildRunningExample();
  ExplainEngine engine = UnwrapOrDie(ExplainEngine::Create(&db));
  UserQuestion question = MakeVenueRatioQuestion(db);
  ExplainOptions options;
  options.degree = DegreeKind::kAggravation;
  options.top_k = 2;
  ExplainReport report = UnwrapOrDie(
      engine.Explain(question, {"Author.name", "Publication.year"}, options));
  ASSERT_FALSE(report.explanations.empty());
  // Aggravation is maximized by restricting to com-heavy cells.
  EXPECT_GT(report.explanations[0].degree, 2.0);
}

TEST(EngineTest, NonAdditiveIntervRescoresExactly) {
  Database db = BuildRunningExample();
  ExplainEngine engine = UnwrapOrDie(ExplainEngine::Create(&db));
  // count(*) with the back-and-forth key: not additive.
  UserQuestion question = MakeVenueRatioQuestion(db);
  AggregateQuery q1, q2;
  q1.name = "q1";
  q1.agg = AggregateSpec::CountStar();
  q1.where = Pred(db, "Author.dom = 'com'");
  q2.name = "q2";
  q2.agg = AggregateSpec::CountStar();
  q2.where = Pred(db, "Author.dom = 'edu'");
  ExprPtr expr = UnwrapOrDie(ParseExpression("q1 / q2", {"q1", "q2"}));
  question.query = UnwrapOrDie(NumericalQuery::Create({q1, q2}, expr));

  ExplainOptions options;
  options.top_k = 3;
  ExplainReport report = UnwrapOrDie(
      engine.Explain(question, {"Author.name"}, options));
  EXPECT_FALSE(report.additivity.additive);
  EXPECT_TRUE(report.exact_rescored);
  ASSERT_FALSE(report.explanations.empty());
  // Degrees are exact now.
  for (const RankedExplanation& e : report.explanations) {
    double exact = UnwrapOrDie(InterventionDegreeExact(
        engine.intervention(), question, e.explanation.predicate()));
    EXPECT_DOUBLE_EQ(e.degree, exact);
  }

  options.exact_rescore_when_not_additive = false;
  EXPECT_FALSE(
      engine.Explain(question, {"Author.name"}, options).ok());
}

TEST(EngineTest, HybridDegreeSkipsExactRescoring) {
  Database db = BuildRunningExample();
  ExplainEngine engine = UnwrapOrDie(ExplainEngine::Create(&db));
  // count(*) with the back-and-forth key is NOT additive, but the hybrid
  // degree (Section 6(iii)) reads the cube proxy anyway, without program P.
  AggregateQuery q1, q2;
  q1.name = "q1";
  q1.agg = AggregateSpec::CountStar();
  q1.where = Pred(db, "Author.dom = 'com'");
  q2.name = "q2";
  q2.agg = AggregateSpec::CountStar();
  q2.where = Pred(db, "Author.dom = 'edu'");
  ExprPtr expr = UnwrapOrDie(ParseExpression("q1 / q2", {"q1", "q2"}));
  UserQuestion question{UnwrapOrDie(NumericalQuery::Create({q1, q2}, expr)),
                        Direction::kHigh};
  ExplainOptions options;
  options.degree = DegreeKind::kHybrid;
  options.top_k = 3;
  ExplainReport report = UnwrapOrDie(
      engine.Explain(question, {"Author.name"}, options));
  EXPECT_FALSE(report.additivity.additive);
  EXPECT_FALSE(report.exact_rescored);  // hybrid never rescored
  ASSERT_FALSE(report.explanations.empty());
  // The hybrid column is sign * E(u - v): check against the table.
  for (const RankedExplanation& e : report.explanations) {
    EXPECT_DOUBLE_EQ(e.degree, report.table.mu_interv[e.m_row]);
  }
}

TEST(EngineTest, NaivePathMatchesCubePath) {
  Database db = BuildRunningExample();
  ExplainEngine engine = UnwrapOrDie(ExplainEngine::Create(&db));
  UserQuestion question = MakeVenueRatioQuestion(db);
  ExplainOptions cube_options;
  ExplainOptions naive_options;
  naive_options.use_cube = false;
  ExplainReport cube = UnwrapOrDie(
      engine.Explain(question, {"Author.name"}, cube_options));
  ExplainReport naive = UnwrapOrDie(
      engine.Explain(question, {"Author.name"}, naive_options));
  ASSERT_EQ(cube.explanations.size(), naive.explanations.size());
  for (size_t i = 0; i < cube.explanations.size(); ++i) {
    EXPECT_DOUBLE_EQ(cube.explanations[i].degree,
                     naive.explanations[i].degree);
  }
  EXPECT_FALSE(naive.used_cube);
}

}  // namespace
}  // namespace xplain
