#include "relational/predicate.h"

#include "gtest/gtest.h"
#include "relational/parser.h"
#include "relational/universal.h"
#include "tests/test_util.h"

namespace xplain {
namespace {

using ::xplain::testing::BuildRunningExample;
using ::xplain::testing::Pred;
using ::xplain::testing::UnwrapOrDie;

TEST(CompareOpTest, RoundTrip) {
  EXPECT_EQ(*CompareOpFromString("="), CompareOp::kEq);
  EXPECT_EQ(*CompareOpFromString("<="), CompareOp::kLe);
  EXPECT_EQ(*CompareOpFromString("!="), CompareOp::kNe);
  EXPECT_FALSE(CompareOpFromString("~").ok());
  EXPECT_STREQ(CompareOpToString(CompareOp::kGe), ">=");
}

TEST(EvalCompareTest, ThreeValuedNullSemantics) {
  EXPECT_FALSE(EvalCompare(Value::Null(), CompareOp::kEq, Value::Null()));
  EXPECT_FALSE(EvalCompare(Value::Null(), CompareOp::kNe, Value::Int(1)));
  EXPECT_FALSE(EvalCompare(Value::Int(1), CompareOp::kLt, Value::Null()));
}

TEST(EvalCompareTest, AllOperators) {
  Value a = Value::Int(3), b = Value::Int(5);
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLt, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLe, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kNe, b));
  EXPECT_FALSE(EvalCompare(a, CompareOp::kGt, b));
  EXPECT_FALSE(EvalCompare(a, CompareOp::kGe, b));
  EXPECT_FALSE(EvalCompare(a, CompareOp::kEq, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kEq, Value::Real(3.0)));
}

TEST(AtomicPredicateTest, CreateValidatesTypes) {
  Database db = BuildRunningExample();
  XPLAIN_EXPECT_OK(AtomicPredicate::Create(db, "Publication.year",
                                           CompareOp::kGe, Value::Int(2000))
                       .status());
  // String column vs int constant.
  EXPECT_FALSE(AtomicPredicate::Create(db, "Author.name", CompareOp::kEq,
                                       Value::Int(1))
                   .ok());
  EXPECT_FALSE(AtomicPredicate::Create(db, "Author.nope", CompareOp::kEq,
                                       Value::Str("x"))
                   .ok());
}

TEST(ConjunctivePredicateTest, EvalUniversal) {
  Database db = BuildRunningExample();
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  ConjunctivePredicate phi =
      Pred(db, "Author.name = 'JG' AND Publication.year = 2001");
  int matches = 0;
  for (size_t i = 0; i < u.NumRows(); ++i) {
    if (phi.EvalUniversal(u, i)) ++matches;
  }
  EXPECT_EQ(matches, 1);  // only (JG, P1, 2001)
}

TEST(ConjunctivePredicateTest, EmptyConjunctionIsTrue) {
  Database db = BuildRunningExample();
  UniversalRelation u = UnwrapOrDie(UniversalRelation::Build(db));
  ConjunctivePredicate phi;
  EXPECT_TRUE(phi.IsTrue());
  EXPECT_TRUE(phi.EvalUniversal(u, 0));
  EXPECT_EQ(phi.ToString(db), "[true]");
}

TEST(ConjunctivePredicateTest, EvalOnRelationIgnoresOtherRelations) {
  Database db = BuildRunningExample();
  ConjunctivePredicate phi =
      Pred(db, "Author.name = 'JG' AND Publication.year = 2001");
  // Author row 0 is JG.
  EXPECT_TRUE(phi.EvalOnRelation(db, 0, 0));
  EXPECT_FALSE(phi.EvalOnRelation(db, 0, 1));
  // Authored has no atoms: vacuously true.
  EXPECT_TRUE(phi.EvalOnRelation(db, 1, 0));
  EXPECT_TRUE(phi.MentionsRelation(0));
  EXPECT_FALSE(phi.MentionsRelation(1));
  EXPECT_TRUE(phi.MentionsRelation(2));
}

TEST(ConjunctivePredicateTest, AndConcatenatesAtoms) {
  Database db = BuildRunningExample();
  ConjunctivePredicate a = Pred(db, "Author.dom = 'com'");
  ConjunctivePredicate b = Pred(db, "Publication.venue = 'SIGMOD'");
  ConjunctivePredicate both = a.And(b);
  EXPECT_EQ(both.atoms().size(), 2u);
}

TEST(ParsePredicateTest, ParsesRangesAndStrings) {
  Database db = BuildRunningExample();
  ConjunctivePredicate phi = Pred(
      db, "Publication.year >= 2000 AND Publication.year <= 2004 AND "
          "Author.dom = 'com'");
  EXPECT_EQ(phi.atoms().size(), 3u);
  EXPECT_EQ(phi.atoms()[0].op, CompareOp::kGe);
  EXPECT_EQ(phi.atoms()[2].constant.AsString(), "com");
}

TEST(ParsePredicateTest, EmptyTextIsTrue) {
  Database db = BuildRunningExample();
  EXPECT_TRUE(Pred(db, "  ").IsTrue());
}

TEST(ParsePredicateTest, Errors) {
  Database db = BuildRunningExample();
  EXPECT_FALSE(ParsePredicate(db, "Author.name").ok());
  EXPECT_FALSE(ParsePredicate(db, "Author.name = ").ok());
  EXPECT_FALSE(ParsePredicate(db, "Author.name = 'JG' extra").ok());
  EXPECT_FALSE(ParsePredicate(db, "Nope.name = 'JG'").ok());
  EXPECT_FALSE(ParsePredicate(db, "Author.name = 'unterminated").ok());
}

TEST(ParsePredicateTest, NegativeNumbersAndDoubles) {
  Database db = BuildRunningExample();
  ConjunctivePredicate phi = Pred(db, "Publication.year > -1");
  EXPECT_EQ(phi.atoms()[0].constant.AsInt(), -1);
}

TEST(PredicateToStringTest, Rendering) {
  Database db = BuildRunningExample();
  ConjunctivePredicate phi =
      Pred(db, "Author.name = 'JG' AND Publication.year = 2001");
  EXPECT_EQ(phi.ToString(db),
            "[Author.name = 'JG' AND Publication.year = 2001]");
}

}  // namespace
}  // namespace xplain
