// End-to-end observability tests: spans recorded concurrently by
// thread-pool workers (distinct tids, no serialization), metrics updated
// from pool tasks (the tsan preset runs this file), disabled-mode no-ops
// while the engine is busy, and ExplainOptions::collect_stats attaching a
// per-phase QueryStats to the report.

#include <cstdint>
#include <latch>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/natality.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace xplain {
namespace {

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::Disable();
    Trace::Clear();
  }
  void TearDown() override {
    Trace::Disable();
    Trace::Clear();
  }
};

// Every worker holds the latch until all four arrived, so the four tasks
// are pinned to four distinct workers; each then records a nested pair of
// spans. The snapshot must show four distinct tids and per-tid containment.
TEST_F(ObservabilityTest, SpansNestAcrossThreadPoolWorkers) {
  constexpr int kWorkers = 4;
  Trace::Enable();
  {
    ThreadPool pool(kWorkers);
    std::latch all_running(kWorkers);
    std::vector<std::future<Status>> futures;
    futures.reserve(kWorkers);
    for (int i = 0; i < kWorkers; ++i) {
      futures.push_back(pool.Submit([&all_running]() -> Status {
        all_running.arrive_and_wait();
        TraceSpan outer("obs.worker_outer");
        { XPLAIN_TRACE_SPAN("obs.worker_inner"); }
        outer.End();
        return Status::OK();
      }));
    }
    for (std::future<Status>& future : futures) {
      EXPECT_TRUE(future.get().ok());
    }
  }
  Trace::Disable();

  std::vector<TraceEvent> events = Trace::Snapshot();
  std::set<uint32_t> outer_tids;
  int outers = 0;
  int inners = 0;
  for (const TraceEvent& event : events) {
    const std::string name = event.name;
    if (name == "obs.worker_outer") {
      ++outers;
      outer_tids.insert(event.tid);
    } else if (name == "obs.worker_inner") {
      ++inners;
    }
  }
  EXPECT_EQ(outers, kWorkers);
  EXPECT_EQ(inners, kWorkers);
  EXPECT_EQ(outer_tids.size(), static_cast<size_t>(kWorkers));

  // Per-tid containment: each worker's inner span lies inside its outer.
  for (const TraceEvent& inner : events) {
    if (std::string(inner.name) != "obs.worker_inner") continue;
    bool contained = false;
    for (const TraceEvent& outer : events) {
      if (std::string(outer.name) != "obs.worker_outer") continue;
      if (outer.tid != inner.tid) continue;
      if (outer.start_us <= inner.start_us &&
          outer.start_us + outer.dur_us >= inner.start_us + inner.dur_us) {
        contained = true;
      }
    }
    EXPECT_TRUE(contained) << "inner span on tid " << inner.tid
                           << " not contained in its worker's outer span";
  }
}

// Concurrent metric updates from pool tasks must lose no increments (the
// tsan preset verifies the absence of data races on the same path).
TEST_F(ObservabilityTest, MetricsFromPoolTasksLoseNoUpdates) {
  constexpr int kTasks = 32;
  constexpr int kIncrementsPerTask = 1000;
  Counter* counter =
      MetricsRegistry::Global().GetCounter("obs.pool_increments");
  const int64_t before = counter->value();
  {
    ThreadPool pool(4);
    std::vector<std::future<Status>> futures;
    futures.reserve(kTasks);
    for (int t = 0; t < kTasks; ++t) {
      futures.push_back(pool.Submit([]() -> Status {
        for (int i = 0; i < kIncrementsPerTask; ++i) {
          XPLAIN_COUNTER_ADD("obs.pool_increments", 1);
          XPLAIN_HISTOGRAM_RECORD("obs.pool_hist", 1.0);
        }
        return Status::OK();
      }));
    }
    for (std::future<Status>& future : futures) {
      EXPECT_TRUE(future.get().ok());
    }
  }
  EXPECT_EQ(counter->value() - before,
            static_cast<int64_t>(kTasks) * kIncrementsPerTask);
}

// With collection off, spans opened on busy pool workers must record
// nothing — the engine's always-compiled instrumentation is a no-op.
TEST_F(ObservabilityTest, DisabledSpansOnWorkersAreNoOps) {
  ASSERT_FALSE(Trace::enabled());
  {
    ThreadPool pool(4);
    std::vector<std::future<Status>> futures;
    for (int t = 0; t < 16; ++t) {
      futures.push_back(pool.Submit([]() -> Status {
        XPLAIN_TRACE_SPAN("obs.disabled_span");
        return Status::OK();
      }));
    }
    for (std::future<Status>& future : futures) {
      EXPECT_TRUE(future.get().ok());
    }
  }
  EXPECT_TRUE(Trace::Snapshot().empty());
}

// Concurrently recorded spans export as schema-valid Chrome JSON with
// lint-conformant names.
TEST_F(ObservabilityTest, ConcurrentSpansExportValidChromeJson) {
  Trace::Enable();
  {
    ThreadPool pool(4);
    std::vector<std::future<Status>> futures;
    for (int t = 0; t < 8; ++t) {
      futures.push_back(pool.Submit([]() -> Status {
        XPLAIN_TRACE_SPAN("obs.exported_span");
        return Status::OK();
      }));
    }
    for (std::future<Status>& future : futures) {
      EXPECT_TRUE(future.get().ok());
    }
  }
  Trace::Disable();
  for (const TraceEvent& event : Trace::Snapshot()) {
    EXPECT_TRUE(MetricsRegistry::IsValidName(event.name)) << event.name;
  }
  const std::string json = Trace::ToChromeJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"obs.exported_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// collect_stats attaches a per-phase QueryStats whose flat view carries
// the per-phase keys the BENCH JSON merge relies on.
TEST_F(ObservabilityTest, CollectStatsPopulatesQueryStats) {
  datagen::NatalityOptions gen;
  gen.num_rows = 2000;
  auto db_result = datagen::GenerateNatality(gen);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  Database db = std::move(db_result).ValueOrDie();
  auto question_result = datagen::MakeNatalityQRace(db);
  ASSERT_TRUE(question_result.ok()) << question_result.status().ToString();
  UserQuestion question = std::move(question_result).ValueOrDie();
  auto engine_result = ExplainEngine::Create(&db);
  ASSERT_TRUE(engine_result.ok()) << engine_result.status().ToString();
  ExplainEngine engine = std::move(engine_result).ValueOrDie();

  ExplainOptions options;
  options.collect_stats = true;
  auto report_result =
      engine.Explain(question, {"Birth.age", "Birth.tobacco"}, options);
  ASSERT_TRUE(report_result.ok()) << report_result.status().ToString();
  ExplainReport report = std::move(report_result).ValueOrDie();

  EXPECT_TRUE(report.stats_collected);
  EXPECT_GT(report.stats.total_ms, 0.0);
  EXPECT_GT(report.stats.table_rows, 0u);
  EXPECT_EQ(report.stats.table_rows, report.table.NumRows());

  std::vector<std::pair<std::string, double>> flat = report.stats.ToFlat();
  auto has_key = [&](const std::string& key) {
    for (const auto& [name, value] : flat) {
      if (name == key) return true;
    }
    return false;
  };
  for (const char* key :
       {"total_ms", "semijoin_ms", "cube_build_ms", "merge_ms", "degree_ms",
        "topk_ms", "exact_rescore_ms", "table_rows", "fixpoint_runs",
        "fixpoint_rounds", "fixpoint_deleted_tuples"}) {
    EXPECT_TRUE(has_key(key)) << "QueryStats::ToFlat missing " << key;
  }
  EXPECT_NE(report.stats.ToString().find("cube_build_ms"), std::string::npos);
}

// Off by default: the report must come back without stats.
TEST_F(ObservabilityTest, StatsOffByDefault) {
  datagen::NatalityOptions gen;
  gen.num_rows = 1000;
  auto db_result = datagen::GenerateNatality(gen);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  Database db = std::move(db_result).ValueOrDie();
  auto question_result = datagen::MakeNatalityQRace(db);
  ASSERT_TRUE(question_result.ok()) << question_result.status().ToString();
  UserQuestion question = std::move(question_result).ValueOrDie();
  auto engine_result = ExplainEngine::Create(&db);
  ASSERT_TRUE(engine_result.ok()) << engine_result.status().ToString();
  ExplainEngine engine = std::move(engine_result).ValueOrDie();

  auto report_result = engine.Explain(question, {"Birth.age"});
  ASSERT_TRUE(report_result.ok()) << report_result.status().ToString();
  EXPECT_FALSE(report_result.ValueOrDie().stats_collected);
}

}  // namespace
}  // namespace xplain
