// xplain_trace: runs a synthetic workload end to end with tracing and
// per-query stats enabled, writes the Chrome trace-event JSON next to the
// working directory, and self-validates the emitted file. Exit status is
// non-zero on any failure, so the smoke run doubles as a ctest entry.
//
//   xplain_trace [--workload natality|dblp] [--rows N] [--threads N]
//                [--out PATH.trace.json]
//
// With --filter the tool post-processes a trace exported by xplaind
// instead of running a workload: it keeps only the spans whose
// args.trace_id matches --trace-id (one request's span tree), optionally
// collapsing all thread tracks into one with --merge so the reactor-side
// and worker-side spans of the request read as a single timeline:
//
//   xplain_trace --filter xplaind_trace.json --trace-id a1f
//                [--merge] --out request.trace.json
//
// Open the output in Perfetto (https://ui.perfetto.dev) or chrome://tracing.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/dblp.h"
#include "datagen/natality.h"
#include "server/json.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace {

struct TraceToolOptions {
  std::string workload = "natality";
  size_t rows = 20000;
  int threads = 0;  // ExplainOptions meaning: 0 = hardware concurrency
  std::string out = "xplain.trace.json";
  std::string filter;    // input trace JSON; empty = workload mode
  std::string trace_id;  // hex id to keep in filter mode
  bool merge = false;    // collapse tids in filter mode
};

int Fail(const std::string& message) {
  std::cerr << "xplain_trace: " << message << std::endl;
  return 1;
}

bool ParseArgs(const std::vector<std::string>& args, TraceToolOptions* opts) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](std::string* value) {
      if (i + 1 >= args.size()) return false;
      *value = args[++i];
      return true;
    };
    std::string value;
    if (arg == "--workload") {
      if (!next(&opts->workload)) return false;
    } else if (arg == "--rows") {
      if (!next(&value)) return false;
      opts->rows = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (arg == "--threads") {
      if (!next(&value)) return false;
      opts->threads = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (arg == "--out") {
      if (!next(&opts->out)) return false;
    } else if (arg == "--filter") {
      if (!next(&opts->filter)) return false;
    } else if (arg == "--trace-id") {
      if (!next(&opts->trace_id)) return false;
    } else if (arg == "--merge") {
      opts->merge = true;
    } else {
      std::cerr << "xplain_trace: unknown flag " << arg << std::endl;
      return false;
    }
  }
  return true;
}

/// Structural sanity check of the Chrome trace-event JSON we just wrote:
/// non-empty traceEvents, every span name on the [a-z0-9_.]+ scheme, and
/// the "X" phase fields present. Not a JSON parser — the emitter is ours
/// and fixed-format, so substring checks are exact enough to catch a
/// broken exporter.
int ValidateTrace(const std::vector<xplain::TraceEvent>& events,
                  const std::string& json) {
  if (events.empty()) return Fail("no spans were recorded");
  if (json.find("{\"traceEvents\":[") != 0) {
    return Fail("trace JSON missing traceEvents envelope");
  }
  if (json.find("\"ph\":\"X\"") == std::string::npos) {
    return Fail("trace JSON has no complete (ph=X) events");
  }
  for (const xplain::TraceEvent& event : events) {
    const std::string name = event.name;
    if (name.empty() || !xplain::MetricsRegistry::IsValidName(name)) {
      return Fail("span name violates [a-z0-9_.]+: '" + name + "'");
    }
    if (event.dur_us < 0 || event.start_us < 0) {
      return Fail("span '" + name + "' has a negative timestamp");
    }
  }
  return 0;
}

/// Re-serializes a parsed JSON value (the exporter's own output, round-
/// tripped through server/json). Objects come back in std::map order,
/// which is fine — Perfetto does not care about member order.
void SerializeJson(const xplain::server::JsonValue& value, std::string* out) {
  using xplain::server::JsonValue;
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out->append("null");
      return;
    case JsonValue::Kind::kBool:
      out->append(value.bool_value() ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber:
      xplain::server::AppendJsonNumber(value.number_value(), out);
      return;
    case JsonValue::Kind::kString:
      xplain::server::AppendJsonString(value.string_value(), out);
      return;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : value.array_items()) {
        if (!first) out->push_back(',');
        first = false;
        SerializeJson(item, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.object_items()) {
        if (!first) out->push_back(',');
        first = false;
        xplain::server::AppendJsonString(key, out);
        out->push_back(':');
        SerializeJson(member, out);
      }
      out->push_back('}');
      return;
    }
  }
}

/// Serializes one trace event, forcing tid to 0 when merging so every
/// kept span lands on a single Perfetto track.
void SerializeEvent(const xplain::server::JsonValue& event, bool merge,
                    std::string* out) {
  using xplain::server::JsonValue;
  out->push_back('{');
  bool first = true;
  for (const auto& [key, member] : event.object_items()) {
    if (!first) out->push_back(',');
    first = false;
    xplain::server::AppendJsonString(key, out);
    out->push_back(':');
    if (merge && key == "tid") {
      out->push_back('0');
    } else {
      SerializeJson(member, out);
    }
  }
  out->push_back('}');
}

/// The --filter mode: keep one request's span tree from an exported trace.
int FilterTrace(const TraceToolOptions& opts) {
  uint64_t want = 0;
  if (!xplain::ParseTraceIdHex(opts.trace_id, &want) || want == 0) {
    return Fail("--trace-id must be 1..16 hex digits (got '" +
                opts.trace_id + "')");
  }
  std::ifstream in(opts.filter);
  if (!in) return Fail("cannot read " + opts.filter);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto root = xplain::server::JsonValue::Parse(buffer.str());
  if (!root.ok()) {
    return Fail("bad trace JSON: " + root.status().ToString());
  }
  const xplain::server::JsonValue* events = root->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail("trace JSON has no traceEvents array");
  }

  std::string out = "{\"traceEvents\":[";
  size_t kept = 0;
  for (const xplain::server::JsonValue& event : events->array_items()) {
    const xplain::server::JsonValue* args = event.Find("args");
    if (args == nullptr) continue;
    uint64_t got = 0;
    if (!xplain::ParseTraceIdHex(args->GetString("trace_id", ""), &got) ||
        got != want) {
      continue;
    }
    if (kept > 0) out.push_back(',');
    SerializeEvent(event, opts.merge, &out);
    ++kept;
  }
  out.append("]}\n");
  if (kept == 0) {
    return Fail("no spans carry trace_id " + opts.trace_id);
  }

  std::ofstream out_stream(opts.out, std::ios::trunc);
  if (!out_stream || !(out_stream << out)) {
    return Fail("cannot write " + opts.out);
  }
  std::cout << "wrote " << opts.out << " (" << kept << " spans of trace "
            << opts.trace_id << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xplain;  // NOLINT

  TraceToolOptions opts;
  if (!ParseArgs(std::vector<std::string>(argv + 1, argv + argc), &opts)) {
    return Fail(
        "usage: xplain_trace [--workload natality|dblp] [--rows N] "
        "[--threads N] [--out PATH]\n"
        "       xplain_trace --filter TRACE.json --trace-id HEX [--merge] "
        "[--out PATH]");
  }
  if (!opts.filter.empty() || !opts.trace_id.empty()) {
    if (opts.filter.empty() || opts.trace_id.empty()) {
      return Fail("--filter and --trace-id must be passed together");
    }
    return FilterTrace(opts);
  }

  Database db;
  UserQuestion question;
  std::vector<std::string> attributes;
  if (opts.workload == "natality") {
    datagen::NatalityOptions gen;
    gen.num_rows = opts.rows;
    auto db_result = datagen::GenerateNatality(gen);
    if (!db_result.ok()) return Fail(db_result.status().ToString());
    db = std::move(db_result).ValueOrDie();
    auto q = datagen::MakeNatalityQRace(db);
    if (!q.ok()) return Fail(q.status().ToString());
    question = std::move(q).ValueOrDie();
    attributes = {"Birth.age", "Birth.tobacco"};
  } else if (opts.workload == "dblp") {
    datagen::DblpOptions gen;
    auto db_result = datagen::GenerateDblp(gen);
    if (!db_result.ok()) return Fail(db_result.status().ToString());
    db = std::move(db_result).ValueOrDie();
    auto q = datagen::MakeDblpBumpQuestion(db);
    if (!q.ok()) return Fail(q.status().ToString());
    question = std::move(q).ValueOrDie();
    attributes = {"Author.dom", "Publication.year"};
  } else {
    return Fail("unknown workload '" + opts.workload +
                "' (expected natality or dblp)");
  }

  auto engine_result = ExplainEngine::Create(&db);
  if (!engine_result.ok()) return Fail(engine_result.status().ToString());
  ExplainEngine engine = std::move(engine_result).ValueOrDie();

  ExplainOptions explain_options;
  explain_options.collect_stats = true;
  explain_options.num_threads = opts.threads;

  Trace::Clear();
  Trace::Enable();
  auto report_result = engine.Explain(question, attributes, explain_options);
  Trace::Disable();
  if (!report_result.ok()) return Fail(report_result.status().ToString());
  ExplainReport report = std::move(report_result).ValueOrDie();

  std::cout << report.ToString(db);
  std::cout << report.stats.ToString();

  const std::vector<TraceEvent> events = Trace::Snapshot();
  const std::string json = Trace::ToChromeJson();
  int validation = ValidateTrace(events, json);
  if (validation != 0) return validation;

  Status write_status = Trace::WriteChromeJson(opts.out);
  if (!write_status.ok()) return Fail(write_status.ToString());
  std::cout << "wrote " << opts.out << " (" << events.size()
            << " spans; open in https://ui.perfetto.dev or "
            << "chrome://tracing)\n";
  return 0;
}
