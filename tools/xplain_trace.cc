// xplain_trace: runs a synthetic workload end to end with tracing and
// per-query stats enabled, writes the Chrome trace-event JSON next to the
// working directory, and self-validates the emitted file. Exit status is
// non-zero on any failure, so the smoke run doubles as a ctest entry.
//
//   xplain_trace [--workload natality|dblp] [--rows N] [--threads N]
//                [--out PATH.trace.json]
//
// Open the output in Perfetto (https://ui.perfetto.dev) or chrome://tracing.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/dblp.h"
#include "datagen/natality.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace {

struct TraceToolOptions {
  std::string workload = "natality";
  size_t rows = 20000;
  int threads = 0;  // ExplainOptions meaning: 0 = hardware concurrency
  std::string out = "xplain.trace.json";
};

int Fail(const std::string& message) {
  std::cerr << "xplain_trace: " << message << std::endl;
  return 1;
}

bool ParseArgs(const std::vector<std::string>& args, TraceToolOptions* opts) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](std::string* value) {
      if (i + 1 >= args.size()) return false;
      *value = args[++i];
      return true;
    };
    std::string value;
    if (arg == "--workload") {
      if (!next(&opts->workload)) return false;
    } else if (arg == "--rows") {
      if (!next(&value)) return false;
      opts->rows = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (arg == "--threads") {
      if (!next(&value)) return false;
      opts->threads = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (arg == "--out") {
      if (!next(&opts->out)) return false;
    } else {
      std::cerr << "xplain_trace: unknown flag " << arg << std::endl;
      return false;
    }
  }
  return true;
}

/// Structural sanity check of the Chrome trace-event JSON we just wrote:
/// non-empty traceEvents, every span name on the [a-z0-9_.]+ scheme, and
/// the "X" phase fields present. Not a JSON parser — the emitter is ours
/// and fixed-format, so substring checks are exact enough to catch a
/// broken exporter.
int ValidateTrace(const std::vector<xplain::TraceEvent>& events,
                  const std::string& json) {
  if (events.empty()) return Fail("no spans were recorded");
  if (json.find("{\"traceEvents\":[") != 0) {
    return Fail("trace JSON missing traceEvents envelope");
  }
  if (json.find("\"ph\":\"X\"") == std::string::npos) {
    return Fail("trace JSON has no complete (ph=X) events");
  }
  for (const xplain::TraceEvent& event : events) {
    const std::string name = event.name;
    if (name.empty() || !xplain::MetricsRegistry::IsValidName(name)) {
      return Fail("span name violates [a-z0-9_.]+: '" + name + "'");
    }
    if (event.dur_us < 0 || event.start_us < 0) {
      return Fail("span '" + name + "' has a negative timestamp");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xplain;  // NOLINT

  TraceToolOptions opts;
  if (!ParseArgs(std::vector<std::string>(argv + 1, argv + argc), &opts)) {
    return Fail(
        "usage: xplain_trace [--workload natality|dblp] [--rows N] "
        "[--threads N] [--out PATH]");
  }

  Database db;
  UserQuestion question;
  std::vector<std::string> attributes;
  if (opts.workload == "natality") {
    datagen::NatalityOptions gen;
    gen.num_rows = opts.rows;
    auto db_result = datagen::GenerateNatality(gen);
    if (!db_result.ok()) return Fail(db_result.status().ToString());
    db = std::move(db_result).ValueOrDie();
    auto q = datagen::MakeNatalityQRace(db);
    if (!q.ok()) return Fail(q.status().ToString());
    question = std::move(q).ValueOrDie();
    attributes = {"Birth.age", "Birth.tobacco"};
  } else if (opts.workload == "dblp") {
    datagen::DblpOptions gen;
    auto db_result = datagen::GenerateDblp(gen);
    if (!db_result.ok()) return Fail(db_result.status().ToString());
    db = std::move(db_result).ValueOrDie();
    auto q = datagen::MakeDblpBumpQuestion(db);
    if (!q.ok()) return Fail(q.status().ToString());
    question = std::move(q).ValueOrDie();
    attributes = {"Author.dom", "Publication.year"};
  } else {
    return Fail("unknown workload '" + opts.workload +
                "' (expected natality or dblp)");
  }

  auto engine_result = ExplainEngine::Create(&db);
  if (!engine_result.ok()) return Fail(engine_result.status().ToString());
  ExplainEngine engine = std::move(engine_result).ValueOrDie();

  ExplainOptions explain_options;
  explain_options.collect_stats = true;
  explain_options.num_threads = opts.threads;

  Trace::Clear();
  Trace::Enable();
  auto report_result = engine.Explain(question, attributes, explain_options);
  Trace::Disable();
  if (!report_result.ok()) return Fail(report_result.status().ToString());
  ExplainReport report = std::move(report_result).ValueOrDie();

  std::cout << report.ToString(db);
  std::cout << report.stats.ToString();

  const std::vector<TraceEvent> events = Trace::Snapshot();
  const std::string json = Trace::ToChromeJson();
  int validation = ValidateTrace(events, json);
  if (validation != 0) return validation;

  Status write_status = Trace::WriteChromeJson(opts.out);
  if (!write_status.ok()) return Fail(write_status.ToString());
  std::cout << "wrote " << opts.out << " (" << events.size()
            << " spans; open in https://ui.perfetto.dev or "
            << "chrome://tracing)\n";
  return 0;
}
