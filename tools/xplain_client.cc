// xplain_client: send newline-delimited JSON requests to a running
// xplaind and print the response lines.
//
//   echo '{"id":1,"op":"STATS"}' | xplain_client --port 7411
//   xplain_client --port 7411 --file requests.ndjson --fail-on-error
//
// Reads requests from --file (or stdin), writes each response to stdout.
// With --fail-on-error, exits 1 if any response carries "ok":false — CI
// smoke tests use this to assert a zero-error run.

#include <fstream>
#include <iostream>
#include <string>

#include "server/tcp_client.h"

namespace {

int Usage(std::ostream& os) {
  os << "usage: xplain_client --port P [--host H] [--file FILE]\n"
     << "                     [--fail-on-error]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string file;
  bool fail_on_error = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::stoi(argv[++i]);
    } else if (arg == "--file" && i + 1 < argc) {
      file = argv[++i];
    } else if (arg == "--fail-on-error") {
      fail_on_error = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(std::cout);
      return 0;
    } else {
      std::cerr << "xplain_client: unknown argument '" << arg << "'\n";
      return Usage(std::cerr);
    }
  }
  if (port <= 0) {
    std::cerr << "xplain_client: --port is required\n";
    return Usage(std::cerr);
  }

  std::ifstream file_stream;
  if (!file.empty()) {
    file_stream.open(file);
    if (!file_stream) {
      std::cerr << "xplain_client: cannot read " << file << "\n";
      return 2;
    }
  }
  std::istream& in = file.empty() ? std::cin : file_stream;

  auto client = xplain::server::TcpClient::Connect(host, port);
  if (!client.ok()) {
    std::cerr << "xplain_client: " << client.status().ToString() << "\n";
    return 1;
  }

  int errors = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto response = client->Call(line);
    if (!response.ok()) {
      std::cerr << "xplain_client: " << response.status().ToString() << "\n";
      return 1;
    }
    std::cout << *response << "\n";
    if (response->find("\"ok\":false") != std::string::npos) ++errors;
  }
  if (fail_on_error && errors > 0) {
    std::cerr << "xplain_client: " << errors << " error response(s)\n";
    return 1;
  }
  return 0;
}
