// xplain_client: send newline-delimited JSON requests to a running
// xplaind and print the response lines.
//
//   echo '{"id":1,"op":"STATS"}' | xplain_client --port 7411
//   xplain_client --port 7411 --file requests.ndjson --fail-on-error
//   xplain_client --port 7411 --file requests.ndjson --pipeline 4
//
// Reads requests from --file (or stdin), writes each response to stdout.
// With --pipeline D, up to D requests are in flight on the connection at
// once; responses still print in request order (the server's per-connection
// ordering guarantee). With --fail-on-error, exits 1 if any response
// carries "ok":false — CI smoke tests use this to assert a zero-error run.
//
// With --metrics the client acts as a Prometheus-style scraper instead:
// it sends one METRICS request, unescapes the `exposition` string member
// of the response, and prints the raw text exposition to stdout.
//
//   xplain_client --port 7411 --metrics | grep xplain_server_op_explain_us

#include <fstream>
#include <iostream>
#include <string>

#include "server/json.h"
#include "server/tcp_client.h"

namespace {

int Usage(std::ostream& os) {
  os << "usage: xplain_client --port P [--host H] [--file FILE]\n"
     << "                     [--pipeline D] [--fail-on-error]\n"
     << "                     [--connect-retries N]\n"
     << "       xplain_client --port P --metrics\n"
     << "  --connect-retries N  bounded dial attempts with exponential\n"
     << "                       backoff (default 3) — rides out a server\n"
     << "                       that is still binding its port\n";
  return 2;
}

// Sends one METRICS request and prints the decoded text exposition.
int ScrapeMetrics(xplain::server::TcpClient& client) {
  const xplain::Status sent = client.Send("{\"id\":1,\"op\":\"METRICS\"}");
  if (!sent.ok()) {
    std::cerr << "xplain_client: " << sent.ToString() << "\n";
    return 1;
  }
  auto response = client.ReadResponse();
  if (!response.ok()) {
    std::cerr << "xplain_client: " << response.status().ToString() << "\n";
    return 1;
  }
  auto root = xplain::server::JsonValue::Parse(*response);
  if (!root.ok()) {
    std::cerr << "xplain_client: bad METRICS response: "
              << root.status().ToString() << "\n";
    return 1;
  }
  const xplain::server::JsonValue* exposition = root->Find("exposition");
  if (exposition == nullptr || !exposition->is_string()) {
    std::cerr << "xplain_client: METRICS response has no exposition member: "
              << *response << "\n";
    return 1;
  }
  std::cout << exposition->string_value();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string file;
  int pipeline = 1;
  bool fail_on_error = false;
  bool metrics = false;
  xplain::server::RetryOptions retry;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::stoi(argv[++i]);
    } else if (arg == "--file" && i + 1 < argc) {
      file = argv[++i];
    } else if (arg == "--pipeline" && i + 1 < argc) {
      pipeline = std::stoi(argv[++i]);
    } else if (arg == "--fail-on-error") {
      fail_on_error = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--connect-retries" && i + 1 < argc) {
      retry.max_attempts = std::stoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      Usage(std::cout);
      return 0;
    } else {
      std::cerr << "xplain_client: unknown argument '" << arg << "'\n";
      return Usage(std::cerr);
    }
  }
  if (port <= 0) {
    std::cerr << "xplain_client: --port is required\n";
    return Usage(std::cerr);
  }
  if (pipeline < 1) pipeline = 1;

  std::ifstream file_stream;
  if (!file.empty()) {
    file_stream.open(file);
    if (!file_stream) {
      std::cerr << "xplain_client: cannot read " << file << "\n";
      return 2;
    }
  }
  std::istream& in = file.empty() ? std::cin : file_stream;

  auto client = xplain::server::TcpClient::ConnectWithRetry(
      host, port, xplain::server::TcpClientOptions(), retry);
  if (!client.ok()) {
    std::cerr << "xplain_client: " << client.status().ToString() << "\n";
    return 1;
  }
  if (metrics) return ScrapeMetrics(*client);

  int errors = 0;
  int outstanding = 0;
  bool input_done = false;
  // Windowed pipelined loop: keep up to `pipeline` requests in flight,
  // then drain the remaining responses once input runs out.
  auto read_one = [&]() -> bool {
    auto response = client->ReadResponse();
    if (!response.ok()) {
      std::cerr << "xplain_client: " << response.status().ToString() << "\n";
      return false;
    }
    std::cout << *response << "\n";
    if (response->find("\"ok\":false") != std::string::npos) ++errors;
    --outstanding;
    return true;
  };
  while (!input_done) {
    std::string line;
    if (!std::getline(in, line)) {
      input_done = true;
      break;
    }
    if (line.empty()) continue;
    const xplain::Status sent = client->Send(line);
    if (!sent.ok()) {
      std::cerr << "xplain_client: " << sent.ToString() << "\n";
      return 1;
    }
    ++outstanding;
    if (outstanding >= pipeline && !read_one()) return 1;
  }
  while (outstanding > 0) {
    if (!read_one()) return 1;
  }
  if (fail_on_error && errors > 0) {
    std::cerr << "xplain_client: " << errors << " error response(s)\n";
    return 1;
  }
  return 0;
}
