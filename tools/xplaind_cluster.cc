// xplaind_cluster: the scatter-gather coordinator daemon (DESIGN.md §13).
// Dials a fleet of xplaind shards, bootstraps the rows-free catalog from
// their schema, and serves the same NDJSON protocol on 127.0.0.1 —
// EXPLAIN/TOPK fan out to every shard and merge bit-identically to a
// single node over the union database; DELTA routes or broadcasts under a
// version barrier.
//
//   xplaind_cluster --shards 127.0.0.1:7411,127.0.0.1:7412
//                   --partition Publication.pubid --port 7410
//
// Prints "xplaind_cluster listening on 127.0.0.1:<port>" once ready
// (scripts parse this line to discover an ephemeral port). Runs until a
// DRAIN request (or SIGINT/SIGTERM) and exits 0 after in-flight fan-outs
// finish. Shards are left running — drain them separately.

#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <string>
#include <thread>

#include "cluster/coordinator.h"
#include "cluster/shard_map.h"
#include "server/tcp_server.h"
#include "util/result.h"
#include "util/string_util.h"

namespace {

std::atomic<bool> g_interrupted{false};

void HandleSignal(int) { g_interrupted.store(true); }

int Usage(std::ostream& os) {
  os << "usage: xplaind_cluster --shards H:P[,H:P...] --partition A[,A...]\n"
     << "                       [--port P] [--workers N] [--queue N]\n"
     << "                       [--reactors N] [--fanout-attempts N]\n"
     << "                       [--connect-retries N] [--recv-timeout-ms N]\n"
     << "                       [--flight N] [--slow_query_us N]\n"
     << "  --shards L           comma-separated shard endpoints, in shard\n"
     << "                       order (index = shard id)\n"
     << "  --partition A        partition attributes the shards were split\n"
     << "                       by (xplain_shard --partition)\n"
     << "  --port P             TCP port on 127.0.0.1; 0 = ephemeral\n"
     << "  --workers N          fan-out worker threads (default: hardware)\n"
     << "  --queue N            admission queue depth beyond workers\n"
     << "  --reactors N         epoll event-loop threads\n"
     << "  --fanout-attempts N  attempts per request on shard failure or\n"
     << "                       version fence trip (default 3)\n"
     << "  --connect-retries N  bounded dial attempts per shard (default 3)\n"
     << "  --recv-timeout-ms N  per-read shard timeout; a killed shard\n"
     << "                       surfaces as ok:false, never a hang\n"
     << "                       (default 30000; 0 = block)\n"
     << "  --flight N           flight-recorder ring capacity (default 256)\n"
     << "  --slow_query_us N    log and pin slow fan-outs (default: off)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string shard_list;
  std::string partition_csv;
  xplain::server::TcpServerOptions tcp;
  xplain::cluster::CoordinatorOptions options;
  options.client.recv_timeout_ms = 30000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      shard_list = argv[++i];
    } else if (arg == "--partition" && i + 1 < argc) {
      partition_csv = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      tcp.port = std::stoi(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      options.num_workers = std::stoi(argv[++i]);
    } else if (arg == "--queue" && i + 1 < argc) {
      options.max_queue_depth = static_cast<size_t>(std::stoul(argv[++i]));
    } else if (arg == "--reactors" && i + 1 < argc) {
      tcp.num_reactors = std::stoi(argv[++i]);
    } else if (arg == "--fanout-attempts" && i + 1 < argc) {
      options.fanout_attempts = std::stoi(argv[++i]);
    } else if (arg == "--connect-retries" && i + 1 < argc) {
      options.connect_retry.max_attempts = std::stoi(argv[++i]);
    } else if (arg == "--recv-timeout-ms" && i + 1 < argc) {
      options.client.recv_timeout_ms = std::stoi(argv[++i]);
    } else if (arg == "--flight" && i + 1 < argc) {
      options.flight_capacity = static_cast<size_t>(std::stoul(argv[++i]));
    } else if (arg == "--slow_query_us" && i + 1 < argc) {
      options.slow_query_us = std::stoll(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      Usage(std::cout);
      return 0;
    } else {
      std::cerr << "xplaind_cluster: unknown argument '" << arg << "'\n";
      return Usage(std::cerr);
    }
  }
  if (shard_list.empty() || partition_csv.empty()) {
    std::cerr << "xplaind_cluster: --shards and --partition are required\n";
    return Usage(std::cerr);
  }

  xplain::Result<std::vector<xplain::cluster::ShardEndpoint>> shards =
      xplain::cluster::ParseShardList(shard_list);
  if (!shards.ok()) {
    std::cerr << "xplaind_cluster: " << shards.status().ToString() << "\n";
    return 1;
  }
  options.shards = *std::move(shards);
  options.partition_attrs = xplain::Split(partition_csv, ',');

  auto coordinator = xplain::cluster::Coordinator::Create(options);
  if (!coordinator.ok()) {
    std::cerr << "xplaind_cluster: " << coordinator.status().ToString()
              << "\n";
    return 1;
  }
  auto server =
      xplain::server::TcpServer::Start(coordinator->get(), tcp);
  if (!server.ok()) {
    std::cerr << "xplaind_cluster: " << server.status().ToString() << "\n";
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::cout << "xplaind_cluster listening on 127.0.0.1:" << (*server)->port()
            << std::endl;

  while (!(*coordinator)->draining() && !g_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  (*server)->Stop();
  (*coordinator)->Drain();
  std::cout << "xplaind_cluster drained, exiting" << std::endl;
  return 0;
}
