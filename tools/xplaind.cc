// xplaind: the explanation-serving daemon. Loads (or generates) a
// database, builds the explanation engine once, and serves
// newline-delimited JSON requests over TCP on 127.0.0.1 (see DESIGN.md §8
// for the protocol grammar).
//
//   xplaind --db /tmp/dblp --port 7411
//   xplaind --gen dblp --scale 0.5 --port 0        # ephemeral port
//
// Prints "xplaind listening on 127.0.0.1:<port>" once ready (scripts parse
// this line to discover an ephemeral port). Runs until a DRAIN request (or
// SIGINT/SIGTERM) and then exits 0 after in-flight work finishes.

#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <string>
#include <thread>

#include "datagen/dblp.h"
#include "relational/storage.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "util/result.h"
#include "util/trace.h"

namespace {

std::atomic<bool> g_interrupted{false};

void HandleSignal(int) { g_interrupted.store(true); }

int Usage(std::ostream& os) {
  os << "usage: xplaind (--db DIR | --gen dblp) [--scale S] [--port P]\n"
     << "               [--workers N] [--queue N] [--reactors N] [--no-cache]\n"
     << "               [--legacy-deltas] [--trace-sample N] [--trace-out F]\n"
     << "               [--flight N] [--slow_query_us N]\n"
     << "  --db DIR      serve a directory-stored database (schema.ddl+CSV)\n"
     << "  --gen dblp    serve the synthetic DBLP instance instead\n"
     << "  --scale S     generator scale factor (default 1.0)\n"
     << "  --port P      TCP port on 127.0.0.1; 0 = ephemeral (default)\n"
     << "  --workers N   engine worker threads (default: hardware)\n"
     << "  --queue N     admission queue depth beyond workers (default 64)\n"
     << "  --reactors N  epoll event-loop threads (default: hardware)\n"
     << "  --no-cache    disable the explanation cache\n"
     << "  --legacy-deltas  DELTA rebuilds the engine and wipes the cache\n"
     << "                   instead of incremental maintenance (DESIGN.md §10)\n"
     << "  --trace-sample N  trace one of every N requests without a wire\n"
     << "                    trace context (0 = off, 1 = all; DESIGN.md §12)\n"
     << "  --trace-out F     write the Chrome trace JSON to F at drain time\n"
     << "                    (default xplaind_trace.json when sampling is on)\n"
     << "  --flight N        flight-recorder ring capacity (default 256)\n"
     << "  --slow_query_us N log and pin requests whose queue+execute+flush\n"
     << "                    time reaches N microseconds (default: disabled)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_dir;
  std::string gen;
  double scale = 1.0;
  std::string trace_out;
  xplain::server::TcpServerOptions tcp;
  xplain::server::ServiceOptions service_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--db" && i + 1 < argc) {
      db_dir = argv[++i];
    } else if (arg == "--gen" && i + 1 < argc) {
      gen = argv[++i];
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::stod(argv[++i]);
    } else if (arg == "--port" && i + 1 < argc) {
      tcp.port = std::stoi(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      service_options.num_workers = std::stoi(argv[++i]);
    } else if (arg == "--queue" && i + 1 < argc) {
      service_options.max_queue_depth =
          static_cast<size_t>(std::stoul(argv[++i]));
    } else if (arg == "--reactors" && i + 1 < argc) {
      tcp.num_reactors = std::stoi(argv[++i]);
    } else if (arg == "--no-cache") {
      service_options.enable_cache = false;
    } else if (arg == "--legacy-deltas") {
      service_options.incremental_deltas = false;
    } else if (arg == "--trace-sample" && i + 1 < argc) {
      service_options.trace_sample_period =
          static_cast<uint64_t>(std::stoull(argv[++i]));
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--flight" && i + 1 < argc) {
      service_options.flight_capacity =
          static_cast<size_t>(std::stoul(argv[++i]));
    } else if (arg == "--slow_query_us" && i + 1 < argc) {
      service_options.slow_query_us = std::stoll(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      Usage(std::cout);
      return 0;
    } else {
      std::cerr << "xplaind: unknown argument '" << arg << "'\n";
      return Usage(std::cerr);
    }
  }
  if (db_dir.empty() == gen.empty()) {
    std::cerr << "xplaind: pass exactly one of --db DIR or --gen dblp\n";
    return Usage(std::cerr);
  }

  xplain::Result<xplain::Database> db =
      [&]() -> xplain::Result<xplain::Database> {
    if (!db_dir.empty()) return xplain::LoadDatabase(db_dir);
    if (gen != "dblp") {
      return xplain::Status::InvalidArgument("unknown generator '" + gen +
                                             "' (only dblp is served)");
    }
    xplain::datagen::DblpOptions options;
    options.scale = scale;
    return xplain::datagen::GenerateDblp(options);
  }();
  if (!db.ok()) {
    std::cerr << "xplaind: " << db.status().ToString() << "\n";
    return 1;
  }

  auto service = xplain::server::XplaindService::Create(*std::move(db),
                                                        service_options);
  if (!service.ok()) {
    std::cerr << "xplaind: " << service.status().ToString() << "\n";
    return 1;
  }
  auto server = xplain::server::TcpServer::Start(service->get(), tcp);
  if (!server.ok()) {
    std::cerr << "xplaind: " << server.status().ToString() << "\n";
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::cout << "xplaind listening on 127.0.0.1:" << (*server)->port()
            << std::endl;

  // Serve until a client sends DRAIN or the process is signalled; either
  // way finish in-flight work before exiting (the graceful-drain
  // contract).
  while (!(*service)->draining() && !g_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  (*server)->Stop();
  (*service)->Drain();
  // With sampling on, export the collected span trees at drain time so a
  // serving run leaves an openable Perfetto/chrome://tracing file behind.
  if (service_options.trace_sample_period > 0) {
    if (trace_out.empty()) trace_out = "xplaind_trace.json";
    const xplain::Status written = xplain::Trace::WriteChromeJson(trace_out);
    if (written.ok()) {
      std::cout << "xplaind trace written to " << trace_out << std::endl;
    } else {
      std::cerr << "xplaind: trace export failed: " << written.ToString()
                << "\n";
    }
  }
  std::cout << "xplaind drained, exiting" << std::endl;
  return 0;
}
