// xplain_lint: repo-invariant checker for rules clang-tidy cannot express.
//
// Scans library code under <root>/src (line/token based, no libclang) and
// enforces:
//   [valueordie-unchecked] ValueOrDie() must be preceded by an ok() check
//                          (or a checking macro) in the same scope.
//   [no-stdout]            library code must not write to stdout via
//                          std::cout / printf; use XPLAIN_LOG.
//   [header-guard]         headers use guards named XPLAIN_<DIR>_<FILE>_H_.
//   [include-cc]           no #include of .cc files.
//   [banned-fn]            atoi / strtok / rand are banned (use
//                          Value::Parse, string_util, datagen/rng.h).
//
// A line containing "xplain-lint: allow" is exempt from all rules.
// Exit code: 0 = clean, 1 = findings, 2 = usage/IO error.
//
// Usage: xplain_lint [--root DIR]   (DIR defaults to the current directory)

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  size_t line;  // 1-based; 0 = whole file
  std::string rule;
  std::string message;
};

std::vector<Finding> g_findings;

void Report(const std::string& file, size_t line, const std::string& rule,
            const std::string& message) {
  g_findings.push_back({file, line, rule, message});
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Replaces comment and string-literal contents with spaces so token scans
// do not fire on prose. Tracks /* */ state across lines via `in_block`.
std::string StripCommentsAndStrings(const std::string& line, bool* in_block) {
  std::string out;
  out.reserve(line.size());
  size_t i = 0;
  while (i < line.size()) {
    if (*in_block) {
      if (line.compare(i, 2, "*/") == 0) {
        *in_block = false;
        out += "  ";
        i += 2;
      } else {
        out += ' ';
        ++i;
      }
      continue;
    }
    if (line.compare(i, 2, "//") == 0) {
      out.append(line.size() - i, ' ');
      break;
    }
    if (line.compare(i, 2, "/*") == 0) {
      *in_block = true;
      out += "  ";
      i += 2;
      continue;
    }
    if (line[i] == '"' || line[i] == '\'') {
      const char quote = line[i];
      out += quote;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out += "  ";
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        out += ' ';
        ++i;
      }
      if (i < line.size()) {
        out += quote;
        ++i;
      }
      continue;
    }
    out += line[i];
    ++i;
  }
  return out;
}

// True if `token` occurs in `text` as a whole identifier.
bool HasToken(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// True if `token` occurs as an identifier immediately followed by '('.
bool HasCall(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    size_t end = pos + token.size();
    while (end < text.size() &&
           std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    if (left_ok && end < text.size() && text[end] == '(') return true;
    pos += token.size();
  }
  return false;
}

struct FileText {
  std::vector<std::string> raw;       // original lines
  std::vector<std::string> code;      // comment/string-stripped lines
  std::vector<int> depth_at_start;    // brace depth before each line
};

bool LoadFile(const fs::path& path, FileText* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  bool in_block = false;
  int depth = 0;
  while (std::getline(in, line)) {
    out->raw.push_back(line);
    std::string code = StripCommentsAndStrings(line, &in_block);
    out->depth_at_start.push_back(depth);
    for (char c : code) {
      if (c == '{') ++depth;
      if (c == '}') depth = std::max(0, depth - 1);
    }
    out->code.push_back(std::move(code));
  }
  return true;
}

bool LineIsExempt(const std::string& raw) {
  return raw.find("xplain-lint: allow") != std::string::npos;
}

// --- rules -----------------------------------------------------------------

void CheckHeaderGuard(const std::string& display, const fs::path& rel,
                      const FileText& text) {
  std::string expected = "XPLAIN_";
  for (const char c : rel.generic_string()) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      expected += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      expected += '_';
    }
  }
  expected += '_';  // "util/status.h" -> "XPLAIN_UTIL_STATUS_H_"

  size_t ifndef_line = 0;
  std::string actual;
  for (size_t i = 0; i < text.code.size(); ++i) {
    const std::string& code = text.code[i];
    const size_t pos = code.find("#ifndef");
    if (pos == std::string::npos) continue;
    size_t start = pos + 7;
    while (start < code.size() &&
           std::isspace(static_cast<unsigned char>(code[start]))) {
      ++start;
    }
    size_t end = start;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    actual = code.substr(start, end - start);
    ifndef_line = i + 1;
    break;
  }
  if (actual.empty()) {
    Report(display, 0, "header-guard",
           "missing include guard (expected " + expected + ")");
    return;
  }
  if (actual != expected) {
    Report(display, ifndef_line, "header-guard",
           "guard is " + actual + ", expected " + expected);
    return;
  }
  if (ifndef_line >= text.code.size() ||
      !HasToken(text.code[ifndef_line], expected) ||
      text.code[ifndef_line].find("#define") == std::string::npos) {
    Report(display, ifndef_line, "header-guard",
           "#ifndef " + expected + " not followed by matching #define");
  }
}

void CheckLines(const std::string& display, const FileText& text,
                bool is_header) {
  (void)is_header;
  // result.h defines ValueOrDie (and operator* forwards to it); the rule
  // applies to callers, not the definition site.
  const bool check_valueordie = display != "src/util/result.h";
  for (size_t i = 0; i < text.code.size(); ++i) {
    if (LineIsExempt(text.raw[i])) continue;
    const std::string& code = text.code[i];
    const size_t line_no = i + 1;

    // [include-cc]
    if (code.find("#include") != std::string::npos) {
      const std::string& raw = text.raw[i];
      if (raw.find(".cc\"") != std::string::npos ||
          raw.find(".cc>") != std::string::npos) {
        Report(display, line_no, "include-cc",
               "#include of a .cc file; include the header instead");
      }
    }

    // [no-stdout]
    if (code.find("std::cout") != std::string::npos) {
      Report(display, line_no, "no-stdout",
             "std::cout in library code; use XPLAIN_LOG or take an ostream&");
    }
    for (const char* fn : {"printf", "fprintf", "puts", "putchar"}) {
      if (HasCall(code, fn)) {
        Report(display, line_no, "no-stdout",
               std::string(fn) + " in library code; use XPLAIN_LOG");
      }
    }

    // [banned-fn]
    for (const char* fn : {"atoi", "strtok", "rand"}) {
      if (HasCall(code, fn)) {
        Report(display, line_no, "banned-fn",
               std::string(fn) +
                   "() is banned (use Value::Parse / string_util / "
                   "datagen/rng.h)");
      }
    }

    // [valueordie-unchecked]
    if (check_valueordie && HasToken(code, "ValueOrDie")) {
      const int scope_depth = text.depth_at_start[i];
      bool checked = false;
      // depth 0 at line start means file scope: the call sits in a
      // one-line function body, so only a same-line ok() can vouch for
      // it -- scanning back would leak checks from unrelated functions.
      for (size_t j = i; scope_depth > 0 && j-- > 0;) {
        if (text.depth_at_start[j] < scope_depth) break;  // left the scope
        const std::string& prev = text.code[j];
        if (prev.find("ok()") != std::string::npos ||
            prev.find("XPLAIN_CHECK") != std::string::npos ||
            prev.find("XPLAIN_DCHECK") != std::string::npos ||
            prev.find("ASSERT_OK") != std::string::npos ||
            prev.find("XPLAIN_ASSIGN_OR_RETURN") != std::string::npos) {
          checked = true;
          break;
        }
      }
      // An ok() check on the same line (e.g. `r.ok() ? r.ValueOrDie() : d`)
      // also counts.
      if (code.find("ok()") != std::string::npos) checked = true;
      if (!checked) {
        Report(display, line_no, "valueordie-unchecked",
               "ValueOrDie() without a preceding ok() check in this scope; "
               "check ok() or use XPLAIN_ASSIGN_OR_RETURN");
      }
    }
  }
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: xplain_lint [--root DIR]\n";
      return 0;
    } else {
      std::cerr << "xplain_lint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  const fs::path src_root = root / "src";
  if (!fs::is_directory(src_root)) {
    std::cerr << "xplain_lint: no src/ directory under " << root << "\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().generic_string();
    if (HasSuffix(name, ".h") || HasSuffix(name, ".cc") ||
        HasSuffix(name, ".cpp") || HasSuffix(name, ".hpp")) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    FileText text;
    if (!LoadFile(path, &text)) {
      std::cerr << "xplain_lint: cannot read " << path << "\n";
      return 2;
    }
    const fs::path rel = fs::relative(path, src_root);
    const std::string display = (fs::path("src") / rel).generic_string();
    const bool is_header =
        HasSuffix(display, ".h") || HasSuffix(display, ".hpp");
    if (is_header) CheckHeaderGuard(display, rel, text);
    CheckLines(display, text, is_header);
  }

  for (const Finding& f : g_findings) {
    std::cerr << f.file;
    if (f.line > 0) std::cerr << ":" << f.line;
    std::cerr << ": [" << f.rule << "] " << f.message << "\n";
  }
  if (!g_findings.empty()) {
    std::cerr << "xplain_lint: " << g_findings.size() << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "xplain_lint: OK (" << files.size() << " files clean)\n";
  return 0;
}
