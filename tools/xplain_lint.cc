// xplain_lint: repo-invariant checker for rules clang-tidy cannot express.
//
// Scans library code under <root>/src (line/token based, no libclang) and
// enforces:
//   [valueordie-unchecked] ValueOrDie() must be preceded by an ok() check
//                          (or a checking macro) in the same scope.
//   [no-stdout]            library code must not write to stdout via
//                          std::cout / printf; use XPLAIN_LOG.
//   [header-guard]         headers use guards named XPLAIN_<DIR>_<FILE>_H_.
//   [include-cc]           no #include of .cc files.
//   [banned-fn]            atoi / strtok / rand are banned (use
//                          Value::Parse, string_util, datagen/rng.h).
//   [doc-comment]          headers under src/core/, src/relational/ and
//                          src/util/: every
//                          namespace-scope class/struct/enum definition and
//                          free function declaration carries a /// summary.
//   [thread-safety-doc]    class/struct definitions in those headers state
//                          their thread-safety in the /// block.
//   [trace-name]           TraceSpan / XPLAIN_COUNTER_ADD / XPLAIN_GAUGE_SET
//                          / XPLAIN_HISTOGRAM_RECORD — and the registry
//                          accessors GetCounter / GetGauge / GetHistogram —
//                          with literal names match [a-z0-9_.]+ and are
//                          unique per translation unit (a duplicate is
//                          almost always a copy-pasted span that renders as
//                          one merged row in Perfetto).
//   [server-trace-prefix]  span/metric literals in src/server/ live in the
//                          rpc. or server. namespace, so serving telemetry
//                          never collides with engine-side names.
//   [cluster-trace-prefix] span/metric literals in src/cluster/ live in the
//                          cluster. namespace, so coordinator telemetry
//                          never collides with shard-side serving names.
//   [raw-mutex]            std::mutex / std::lock_guard / std::unique_lock
//                          and friends are banned in src/ outside
//                          util/mutex.{h,cc}; use the annotated capability
//                          wrappers (xplain::Mutex/MutexLock/CondVar) so
//                          clang Thread Safety Analysis sees every lock.
//   [guarded-by]           a member declared next to a comment naming a
//                          mutex ("guarded by mu"), or a mutable member of
//                          a class whose /// block says "Thread-safe",
//                          must carry XPLAIN_GUARDED_BY (or an explicit
//                          allow) — prose invariants must be annotations.
//
// A line containing "xplain-lint: allow" is exempt from all rules.
// Exit code: 0 = clean, 1 = findings, 2 = usage/IO error.
//
// Usage: xplain_lint [--root DIR] [--rules R1,R2]
//   DIR defaults to the current directory; --rules restricts reporting to
//   the named rules (e.g. --rules doc-comment,thread-safety-doc for the
//   docs CI job). Unknown rule names are a usage error (exit 2) — a typo
//   must not silently turn the lint green.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  size_t line;  // 1-based; 0 = whole file
  std::string rule;
  std::string message;
};

std::vector<Finding> g_findings;

void Report(const std::string& file, size_t line, const std::string& rule,
            const std::string& message) {
  g_findings.push_back({file, line, rule, message});
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Replaces comment and string-literal contents with spaces so token scans
// do not fire on prose. Tracks /* */ state across lines via `in_block`.
std::string StripCommentsAndStrings(const std::string& line, bool* in_block) {
  std::string out;
  out.reserve(line.size());
  size_t i = 0;
  while (i < line.size()) {
    if (*in_block) {
      if (line.compare(i, 2, "*/") == 0) {
        *in_block = false;
        out += "  ";
        i += 2;
      } else {
        out += ' ';
        ++i;
      }
      continue;
    }
    if (line.compare(i, 2, "//") == 0) {
      out.append(line.size() - i, ' ');
      break;
    }
    if (line.compare(i, 2, "/*") == 0) {
      *in_block = true;
      out += "  ";
      i += 2;
      continue;
    }
    if (line[i] == '"' || line[i] == '\'') {
      const char quote = line[i];
      out += quote;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out += "  ";
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        out += ' ';
        ++i;
      }
      if (i < line.size()) {
        out += quote;
        ++i;
      }
      continue;
    }
    out += line[i];
    ++i;
  }
  return out;
}

// True if `token` occurs in `text` as a whole identifier.
bool HasToken(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// True if `token` occurs as an identifier immediately followed by '('.
bool HasCall(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    size_t end = pos + token.size();
    while (end < text.size() &&
           std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    if (left_ok && end < text.size() && text[end] == '(') return true;
    pos += token.size();
  }
  return false;
}

struct FileText {
  std::vector<std::string> raw;       // original lines
  std::vector<std::string> code;      // comment/string-stripped lines
  std::vector<int> depth_at_start;    // brace depth before each line
};

bool LoadFile(const fs::path& path, FileText* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  bool in_block = false;
  int depth = 0;
  while (std::getline(in, line)) {
    out->raw.push_back(line);
    std::string code = StripCommentsAndStrings(line, &in_block);
    out->depth_at_start.push_back(depth);
    for (char c : code) {
      if (c == '{') ++depth;
      if (c == '}') depth = std::max(0, depth - 1);
    }
    out->code.push_back(std::move(code));
  }
  return true;
}

bool LineIsExempt(const std::string& raw) {
  return raw.find("xplain-lint: allow") != std::string::npos;
}

// --- rules -----------------------------------------------------------------

void CheckHeaderGuard(const std::string& display, const fs::path& rel,
                      const FileText& text) {
  std::string expected = "XPLAIN_";
  for (const char c : rel.generic_string()) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      expected += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      expected += '_';
    }
  }
  expected += '_';  // "util/status.h" -> "XPLAIN_UTIL_STATUS_H_"

  size_t ifndef_line = 0;
  std::string actual;
  for (size_t i = 0; i < text.code.size(); ++i) {
    const std::string& code = text.code[i];
    const size_t pos = code.find("#ifndef");
    if (pos == std::string::npos) continue;
    size_t start = pos + 7;
    while (start < code.size() &&
           std::isspace(static_cast<unsigned char>(code[start]))) {
      ++start;
    }
    size_t end = start;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    actual = code.substr(start, end - start);
    ifndef_line = i + 1;
    break;
  }
  if (actual.empty()) {
    Report(display, 0, "header-guard",
           "missing include guard (expected " + expected + ")");
    return;
  }
  if (actual != expected) {
    Report(display, ifndef_line, "header-guard",
           "guard is " + actual + ", expected " + expected);
    return;
  }
  if (ifndef_line >= text.code.size() ||
      !HasToken(text.code[ifndef_line], expected) ||
      text.code[ifndef_line].find("#define") == std::string::npos) {
    Report(display, ifndef_line, "header-guard",
           "#ifndef " + expected + " not followed by matching #define");
  }
}

void CheckLines(const std::string& display, const FileText& text,
                bool is_header) {
  (void)is_header;
  // result.h defines ValueOrDie (and operator* forwards to it); the rule
  // applies to callers, not the definition site.
  const bool check_valueordie = display != "src/util/result.h";
  for (size_t i = 0; i < text.code.size(); ++i) {
    if (LineIsExempt(text.raw[i])) continue;
    const std::string& code = text.code[i];
    const size_t line_no = i + 1;

    // [include-cc]
    if (code.find("#include") != std::string::npos) {
      const std::string& raw = text.raw[i];
      if (raw.find(".cc\"") != std::string::npos ||
          raw.find(".cc>") != std::string::npos) {
        Report(display, line_no, "include-cc",
               "#include of a .cc file; include the header instead");
      }
    }

    // [no-stdout]
    if (code.find("std::cout") != std::string::npos) {
      Report(display, line_no, "no-stdout",
             "std::cout in library code; use XPLAIN_LOG or take an ostream&");
    }
    for (const char* fn : {"printf", "fprintf", "puts", "putchar"}) {
      if (HasCall(code, fn)) {
        Report(display, line_no, "no-stdout",
               std::string(fn) + " in library code; use XPLAIN_LOG");
      }
    }

    // [banned-fn]
    for (const char* fn : {"atoi", "strtok", "rand"}) {
      if (HasCall(code, fn)) {
        Report(display, line_no, "banned-fn",
               std::string(fn) +
                   "() is banned (use Value::Parse / string_util / "
                   "datagen/rng.h)");
      }
    }

    // [raw-mutex] — only util/mutex.{h,cc} may touch the raw primitives;
    // everything else goes through the annotated capability wrappers so
    // clang Thread Safety Analysis sees every acquire/release.
    if (display != "src/util/mutex.h" && display != "src/util/mutex.cc") {
      for (const char* primitive :
           {"std::mutex", "std::shared_mutex", "std::recursive_mutex",
            "std::timed_mutex", "std::lock_guard", "std::unique_lock",
            "std::shared_lock", "std::scoped_lock", "std::condition_variable",
            "std::condition_variable_any"}) {
        if (HasToken(code, primitive)) {
          Report(display, line_no, "raw-mutex",
                 std::string(primitive) +
                     " in library code; use xplain::Mutex / MutexLock / "
                     "CondVar from util/mutex.h (annotated for clang "
                     "Thread Safety Analysis)");
        }
      }
    }

    // [valueordie-unchecked]
    if (check_valueordie && HasToken(code, "ValueOrDie")) {
      const int scope_depth = text.depth_at_start[i];
      bool checked = false;
      // depth 0 at line start means file scope: the call sits in a
      // one-line function body, so only a same-line ok() can vouch for
      // it -- scanning back would leak checks from unrelated functions.
      for (size_t j = i; scope_depth > 0 && j-- > 0;) {
        if (text.depth_at_start[j] < scope_depth) break;  // left the scope
        const std::string& prev = text.code[j];
        if (prev.find("ok()") != std::string::npos ||
            prev.find("XPLAIN_CHECK") != std::string::npos ||
            prev.find("XPLAIN_DCHECK") != std::string::npos ||
            prev.find("ASSERT_OK") != std::string::npos ||
            prev.find("XPLAIN_ASSIGN_OR_RETURN") != std::string::npos) {
          checked = true;
          break;
        }
      }
      // An ok() check on the same line (e.g. `r.ok() ? r.ValueOrDie() : d`)
      // also counts.
      if (code.find("ok()") != std::string::npos) checked = true;
      if (!checked) {
        Report(display, line_no, "valueordie-unchecked",
               "ValueOrDie() without a preceding ok() check in this scope; "
               "check ok() or use XPLAIN_ASSIGN_OR_RETURN");
      }
    }
  }
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

std::string TrimLeft(const std::string& s) {
  size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return s.substr(i);
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// --- doc-comment rules -----------------------------------------------------
//
// Headers under src/core/, src/relational/ and src/util/ are the
// library's public surface:
// every namespace-scope class/struct/enum definition and free function
// declaration must be introduced by a /// comment, and class definitions
// must state their thread-safety contract in that block. The scan is
// token-based: braces opened by a `namespace` statement keep us "at
// namespace scope"; any other brace (class body, function body) leaves it.

/// True if the raw line immediately above `line` (0-based) is a ///
/// comment; `block_start` receives the first line of the contiguous ///
/// block when found.
bool HasDocAbove(const FileText& text, size_t line, size_t* block_start) {
  if (line == 0) return false;
  size_t j = line;
  while (j > 0 && HasPrefix(TrimLeft(text.raw[j - 1]), "///")) --j;
  if (j == line) return false;
  *block_start = j;
  return true;
}

/// True if the /// block [block_start, block_end) mentions thread-safety.
bool DocMentionsThreadSafety(const FileText& text, size_t block_start,
                             size_t block_end) {
  for (size_t j = block_start; j < block_end; ++j) {
    const std::string lower = ToLower(text.raw[j]);
    if (lower.find("thread-safe") != std::string::npos ||
        lower.find("thread safe") != std::string::npos ||
        lower.find("thread-compatible") != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// Strips a leading `template <...>` (angle-bracket balanced) from a
/// joined declaration statement.
std::string StripTemplatePrefix(const std::string& stmt) {
  std::string s = TrimLeft(stmt);
  while (HasPrefix(s, "template")) {
    size_t i = 8;
    while (i < s.size() && s[i] != '<') ++i;
    if (i >= s.size()) return s;
    int angle = 0;
    for (; i < s.size(); ++i) {
      if (s[i] == '<') ++angle;
      if (s[i] == '>' && --angle == 0) {
        ++i;
        break;
      }
    }
    s = TrimLeft(s.substr(i));
  }
  return s;
}

void CheckDocComments(const std::string& display, const FileText& text) {
  // Brace stack entry per open brace: kNamespace for a public namespace,
  // kInternal for namespace internal/detail (implementation surface, not
  // checked), kOther for class/function bodies.
  enum BraceKind { kNamespace, kInternal, kOther };
  std::vector<BraceKind> ns_brace;
  bool prev_backslash = false;  // previous raw line ended a macro with '\'
  size_t i = 0;
  while (i < text.code.size()) {
    const std::string trimmed = TrimLeft(text.code[i]);
    const bool at_ns_scope =
        std::all_of(ns_brace.begin(), ns_brace.end(),
                    [](BraceKind b) { return b == kNamespace; });
    const bool macro_continuation = prev_backslash;
    prev_backslash = !text.raw[i].empty() && text.raw[i].back() == '\\';

    // Statement-start detection: namespace scope, real code, not a
    // preprocessor line / closing brace / macro continuation.
    const bool starts_statement =
        at_ns_scope && !trimmed.empty() && trimmed[0] != '#' &&
        trimmed[0] != '}' && !macro_continuation &&
        !LineIsExempt(text.raw[i]);

    size_t stmt_end = i;  // last line of the statement (inclusive)
    std::string stmt;
    if (starts_statement) {
      // Join lines until the statement ends with ';' or opens a body '{'
      // (whichever comes first), capped defensively.
      bool open_brace = false;
      for (size_t j = i; j < text.code.size() && j < i + 40; ++j) {
        const std::string& code = text.code[j];
        stmt += code;
        stmt += ' ';
        stmt_end = j;
        const size_t brace = code.find('{');
        const size_t semi = code.find(';');
        if (brace != std::string::npos &&
            (semi == std::string::npos || brace < semi)) {
          open_brace = true;
          break;
        }
        if (semi != std::string::npos) break;
      }
      const std::string decl = StripTemplatePrefix(stmt);
      const bool is_class =
          HasPrefix(decl, "class ") || HasPrefix(decl, "struct ");
      const bool is_enum = HasPrefix(decl, "enum ");
      const bool skip = HasPrefix(decl, "namespace") ||
                        HasPrefix(decl, "using ") ||
                        HasPrefix(decl, "typedef ") ||
                        HasPrefix(decl, "extern ") ||
                        HasPrefix(decl, "static_assert") ||
                        HasPrefix(decl, "friend ");
      const bool is_definition = open_brace;
      const bool is_function =
          !is_class && !is_enum && !skip &&
          decl.find('(') != std::string::npos;
      const size_t line_no = i + 1;
      if (!skip && ((is_class && is_definition) || (is_enum && is_definition) ||
                    is_function)) {
        size_t block_start = 0;
        if (!HasDocAbove(text, i, &block_start)) {
          const char* what = is_class ? "class/struct definition"
                            : is_enum ? "enum definition"
                                      : "function declaration";
          Report(display, line_no, "doc-comment",
                 std::string(what) +
                     " without a /// summary (public headers under "
                     "src/core/, src/relational/ and src/util/ document "
                     "their surface)");
        } else if (is_class && is_definition &&
                   !DocMentionsThreadSafety(text, block_start, i)) {
          Report(display, line_no, "thread-safety-doc",
                 "class/struct /// block does not state its thread-safety "
                 "contract (e.g. \"Thread-safety: ...\")");
        }
      }
    }

    // Advance the brace stack over the lines we consumed.
    for (size_t j = i; j <= stmt_end; ++j) {
      const std::string& code = text.code[j];
      // A '{' belongs to a namespace iff the statement fragment before it
      // on this logical line mentions `namespace`.
      size_t cursor = 0;
      std::string fragment;
      for (size_t pos = 0; pos < code.size(); ++pos) {
        if (code[pos] == '{') {
          fragment.append(code, cursor, pos - cursor);
          BraceKind kind = kOther;
          if (HasToken(fragment, "namespace")) {
            kind = HasToken(fragment, "internal") || HasToken(fragment, "detail")
                       ? kInternal
                       : kNamespace;
          }
          ns_brace.push_back(kind);
          fragment.clear();
          cursor = pos + 1;
        } else if (code[pos] == '}') {
          fragment.clear();
          cursor = pos + 1;
          if (!ns_brace.empty()) ns_brace.pop_back();
        } else if (code[pos] == ';') {
          fragment.clear();
          cursor = pos + 1;
        }
      }
      if (cursor < code.size()) fragment.append(code, cursor);
    }
    i = stmt_end + 1;
  }
}

// --- trace-name rule -------------------------------------------------------
//
// Observability names (trace.h / metrics.h) form one flat dotted namespace;
// the emitters never escape them, so the charset is restricted to
// [a-z0-9_.]+. Uniqueness is per file: a TU reusing a span name almost
// always means a copy-pasted instrumentation block. Besides the macros,
// the rule covers direct MetricsRegistry accessor calls (GetCounter /
// GetGauge / GetHistogram with a literal first argument) — the cached-
// pointer pattern used for hot-path histograms bypasses the macros but
// mints names into the same exposition namespace.

bool IsValidTraceName(const std::string& name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
           c == '.';
  });
}

// Position of the '(' opening the call `token(...)` at/after `start`
// (allowing one identifier between token and paren, which matches both
// `XPLAIN_COUNTER_ADD(` and the `TraceSpan span(` constructor form), or
// npos. `after` receives the index just past the '('.
size_t FindCallParen(const std::string& code, const std::string& token,
                     size_t start, size_t* after) {
  size_t pos = start;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    size_t end = pos + token.size();
    if (left_ok && (end >= code.size() || !IsIdentChar(code[end]))) {
      while (end < code.size() &&
             std::isspace(static_cast<unsigned char>(code[end]))) {
        ++end;
      }
      // Optional variable name: `TraceSpan merge_span("...")`.
      while (end < code.size() && IsIdentChar(code[end])) ++end;
      while (end < code.size() &&
             std::isspace(static_cast<unsigned char>(code[end]))) {
        ++end;
      }
      if (end < code.size() && code[end] == '(') {
        *after = end + 1;
        return end;
      }
    }
    pos += token.size();
  }
  return std::string::npos;
}

void CheckTraceNames(const std::string& display, const FileText& text) {
  static const char* kNameTakingCalls[] = {
      "XPLAIN_TRACE_SPAN", "XPLAIN_COUNTER_ADD", "XPLAIN_GAUGE_SET",
      "XPLAIN_HISTOGRAM_RECORD", "TraceSpan", "GetCounter", "GetGauge",
      "GetHistogram"};
  std::vector<std::pair<std::string, size_t>> seen;  // name -> first line
  for (size_t i = 0; i < text.code.size(); ++i) {
    if (LineIsExempt(text.raw[i])) continue;
    for (const char* call : kNameTakingCalls) {
      size_t search = 0;
      size_t after = 0;
      while (FindCallParen(text.code[i], call, search, &after) !=
             std::string::npos) {
        search = after;
        // The name must be the first argument: find the opening quote as
        // the first non-space character, looking ahead a couple of lines
        // for wrapped calls. A non-literal first argument (e.g. the macro
        // definition itself, or a constructor taking a variable) is not
        // this rule's business.
        size_t line = i;
        size_t col = after;
        size_t q1 = std::string::npos;
        for (int hop = 0; hop < 3 && line < text.code.size(); ++hop) {
          const std::string& code = text.code[line];
          while (col < code.size() &&
                 std::isspace(static_cast<unsigned char>(code[col]))) {
            ++col;
          }
          if (col < code.size()) {
            if (code[col] == '"') q1 = col;
            break;
          }
          ++line;
          col = 0;
        }
        if (q1 == std::string::npos) continue;
        const std::string& code = text.code[line];
        const size_t q2 = code.find('"', q1 + 1);
        if (q2 == std::string::npos) continue;
        // Stripped and raw lines are position-aligned (the stripper
        // preserves length), so the literal text lives at [q1+1, q2) of
        // the raw line.
        const std::string name = text.raw[line].substr(q1 + 1, q2 - q1 - 1);
        const size_t line_no = line + 1;
        if (!IsValidTraceName(name)) {
          Report(display, line_no, "trace-name",
                 "span/metric name \"" + name +
                     "\" violates the [a-z0-9_.]+ naming scheme");
          continue;
        }
        if (HasPrefix(display, "src/server/") &&
            !HasPrefix(name, "rpc.") && !HasPrefix(name, "server.")) {
          Report(display, line_no, "server-trace-prefix",
                 "span/metric name \"" + name +
                     "\" in src/server/ must use the rpc. or server. "
                     "namespace");
          continue;
        }
        if (HasPrefix(display, "src/cluster/") &&
            !HasPrefix(name, "cluster.")) {
          Report(display, line_no, "cluster-trace-prefix",
                 "span/metric name \"" + name +
                     "\" in src/cluster/ must use the cluster. namespace");
          continue;
        }
        bool duplicate = false;
        for (const auto& [prev_name, prev_line] : seen) {
          if (prev_name == name) {
            Report(display, line_no, "trace-name",
                   "span/metric name \"" + name +
                       "\" already used at line " +
                       std::to_string(prev_line) +
                       " in this translation unit (copy-pasted span?)");
            duplicate = true;
            break;
          }
        }
        if (!duplicate) seen.emplace_back(name, line_no);
      }
    }
  }
}

// --- guarded-by rule -------------------------------------------------------
//
// A locking invariant written as prose is invisible to clang's analysis.
// Two patterns promote it to a checked annotation:
//   (a) a plain comment saying "guarded by ..." next to a member
//       declaration — the declaration must carry XPLAIN_GUARDED_BY /
//       XPLAIN_PT_GUARDED_BY (/// doc blocks are narrative, not flagged);
//   (b) a `mutable` member of a class whose /// block claims it is
//       thread-safe — mutability inside a thread-safe class implies
//       internal synchronization the analysis should know about.
// Synchronization primitives themselves (Mutex, CondVar, atomics) are
// exempt: they are the capability, not data guarded by one.

bool DeclIsSyncPrimitive(const std::string& code) {
  return HasToken(code, "Mutex") || HasToken(code, "SharedMutex") ||
         HasToken(code, "CondVar") || code.find("atomic") != std::string::npos ||
         HasToken(code, "once_flag");
}

bool DeclHasGuardAnnotation(const std::string& code) {
  return code.find("XPLAIN_GUARDED_BY") != std::string::npos ||
         code.find("XPLAIN_PT_GUARDED_BY") != std::string::npos;
}

void CheckGuardedBy(const std::string& display, const FileText& text) {
  for (size_t i = 0; i < text.code.size(); ++i) {
    if (LineIsExempt(text.raw[i])) continue;
    const std::string raw_lower = ToLower(text.raw[i]);
    // (a) comment names a guarding mutex
    if (raw_lower.find("guarded by") != std::string::npos &&
        !HasPrefix(TrimLeft(text.raw[i]), "///") &&
        !DeclHasGuardAnnotation(text.code[i])) {
      // The annotated declaration is this line (trailing comment) or the
      // first code line within the next 3 (comment-above form).
      size_t decl = std::string::npos;
      for (size_t j = i; j < text.code.size() && j <= i + 3; ++j) {
        const std::string trimmed = TrimLeft(text.code[j]);
        if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '}') continue;
        decl = j;
        break;
      }
      if (decl != std::string::npos && text.depth_at_start[decl] > 0 &&
          !LineIsExempt(text.raw[decl]) &&
          !DeclHasGuardAnnotation(text.code[decl]) &&
          !DeclIsSyncPrimitive(text.code[decl])) {
        Report(display, decl + 1, "guarded-by",
               "member documented as mutex-guarded lacks XPLAIN_GUARDED_BY "
               "(prose invariants must be annotations clang can check)");
      }
    }
    // (b) mutable member of a /// "Thread-safe" class
    const std::string trimmed = TrimLeft(text.code[i]);
    if ((HasPrefix(trimmed, "class ") || HasPrefix(trimmed, "struct ")) &&
        text.code[i].find(';') == std::string::npos) {
      size_t block_start = 0;
      if (!HasDocAbove(text, i, &block_start)) continue;
      bool claims_safe = false;
      for (size_t j = block_start; j < i; ++j) {
        if (ToLower(text.raw[j]).find("thread-safe") != std::string::npos) {
          claims_safe = true;
          break;
        }
      }
      if (!claims_safe) continue;
      // Scan the class body: members sit one level deeper than the class.
      const int class_depth = text.depth_at_start[i];
      for (size_t j = i + 1; j < text.code.size(); ++j) {
        if (j > i + 1 && text.depth_at_start[j] <= class_depth) {
          break;  // end of class body
        }
        if (text.depth_at_start[j] != class_depth + 1) continue;
        const std::string member = TrimLeft(text.code[j]);
        if (!HasPrefix(member, "mutable ")) continue;
        if (LineIsExempt(text.raw[j]) || DeclHasGuardAnnotation(text.code[j]) ||
            DeclIsSyncPrimitive(text.code[j])) {
          continue;
        }
        // Wrapped declarations put the annotation on a later line; accept
        // it anywhere before the terminating ';'.
        bool annotated = false;
        for (size_t k = j; k < text.code.size() && k <= j + 3; ++k) {
          if (DeclHasGuardAnnotation(text.code[k])) annotated = true;
          if (text.code[k].find(';') != std::string::npos) break;
        }
        if (annotated) continue;
        Report(display, j + 1, "guarded-by",
               "mutable member of a class documented \"Thread-safe\" lacks "
               "XPLAIN_GUARDED_BY (internal synchronization must be visible "
               "to clang's analysis)");
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Every rule the linter can emit. --rules names are validated against
  // this list: a typo that matches nothing must be a hard error, not a
  // filter that silently discards every finding (and turns CI green).
  static const char* kKnownRules[] = {
      "valueordie-unchecked", "no-stdout",         "header-guard",
      "include-cc",           "banned-fn",         "doc-comment",
      "thread-safety-doc",    "trace-name",        "server-trace-prefix",
      "cluster-trace-prefix", "raw-mutex",         "guarded-by"};

  fs::path root = ".";
  std::vector<std::string> only_rules;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--rules" && i + 1 < argc) {
      std::string list = argv[++i];
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) only_rules.push_back(list.substr(start, comma - start));
        start = comma + 1;
      }
      for (const std::string& rule : only_rules) {
        const bool known =
            std::find_if(std::begin(kKnownRules), std::end(kKnownRules),
                         [&](const char* r) { return rule == r; }) !=
            std::end(kKnownRules);
        if (!known) {
          std::cerr << "xplain_lint: unknown rule '" << rule
                    << "'; valid rules:";
          for (const char* r : kKnownRules) std::cerr << " " << r;
          std::cerr << "\n";
          return 2;
        }
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: xplain_lint [--root DIR] [--rules R1,R2]\n";
      return 0;
    } else {
      std::cerr << "xplain_lint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  const fs::path src_root = root / "src";
  if (!fs::is_directory(src_root)) {
    std::cerr << "xplain_lint: no src/ directory under " << root << "\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().generic_string();
    if (HasSuffix(name, ".h") || HasSuffix(name, ".cc") ||
        HasSuffix(name, ".cpp") || HasSuffix(name, ".hpp")) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    FileText text;
    if (!LoadFile(path, &text)) {
      std::cerr << "xplain_lint: cannot read " << path << "\n";
      return 2;
    }
    const fs::path rel = fs::relative(path, src_root);
    const std::string display = (fs::path("src") / rel).generic_string();
    const bool is_header =
        HasSuffix(display, ".h") || HasSuffix(display, ".hpp");
    if (is_header) CheckHeaderGuard(display, rel, text);
    CheckLines(display, text, is_header);
    CheckTraceNames(display, text);
    CheckGuardedBy(display, text);
    if (is_header && (HasPrefix(display, "src/core/") ||
                      HasPrefix(display, "src/relational/") ||
                      HasPrefix(display, "src/util/"))) {
      CheckDocComments(display, text);
    }
  }

  if (!only_rules.empty()) {
    g_findings.erase(
        std::remove_if(g_findings.begin(), g_findings.end(),
                       [&](const Finding& f) {
                         return std::find(only_rules.begin(), only_rules.end(),
                                          f.rule) == only_rules.end();
                       }),
        g_findings.end());
  }

  for (const Finding& f : g_findings) {
    std::cerr << f.file;
    if (f.line > 0) std::cerr << ":" << f.line;
    std::cerr << ": [" << f.rule << "] " << f.message << "\n";
  }
  if (!g_findings.empty()) {
    std::cerr << "xplain_lint: " << g_findings.size() << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "xplain_lint: OK (" << files.size() << " files clean)\n";
  return 0;
}
