// The xplain command-line tool: generate synthetic datasets, inspect
// schemas, evaluate aggregates, compute interventions, and rank candidate
// explanations over a directory-stored database (schema.ddl + CSVs).
//
//   xplain gen dblp /tmp/dblp
//   xplain schema /tmp/dblp
//   xplain ask /tmp/dblp --expr "q1 / q2" --direction low
//     --subquery "q1|count(distinct Publication.pubid)|venue = 'SIGMOD'"
//     --subquery "q2|count(distinct Publication.pubid)|venue = 'PODS'"
//     --attrs Author.name,Author.inst

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return xplain::cli::RunCli(args, std::cout, std::cerr);
}
