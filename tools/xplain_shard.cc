// xplain_shard: the hash partitioner. Loads (or generates) a database,
// splits it into K shard databases by hashing the partition attributes
// over the universal relation (DESIGN.md §13), and writes each shard as a
// directory-stored database that xplaind can serve directly.
//
//   xplain_shard --gen dblp --partition Publication.pubid --k 2 --out /tmp/s
//   xplain_shard --db /tmp/dblp --partition Publication.pubid --k 4
//                --out /tmp/shard
//
// Writes <out>0 .. <out>K-1 and prints one line per shard with its row
// counts. Every shard carries the full schema and all foreign keys; a
// universal row's base rows always land on the same shard.

#include <iostream>
#include <string>
#include <vector>

#include "cluster/partition.h"
#include "cluster/shard_map.h"
#include "datagen/dblp.h"
#include "relational/storage.h"
#include "util/result.h"
#include "util/string_util.h"

namespace {

int Usage(std::ostream& os) {
  os << "usage: xplain_shard (--db DIR | --gen dblp) [--scale S]\n"
     << "                    --partition Rel.attr[,Rel.attr...] --k K\n"
     << "                    --out PREFIX\n"
     << "  --db DIR        partition a directory-stored database\n"
     << "  --gen dblp      partition the synthetic DBLP instance\n"
     << "  --scale S       generator scale factor (default 1.0)\n"
     << "  --partition A   comma-separated partition attributes\n"
     << "  --k K           number of shards (>= 1)\n"
     << "  --out PREFIX    output directories PREFIX0 .. PREFIX(K-1)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_dir;
  std::string gen;
  double scale = 1.0;
  std::string partition_csv;
  size_t k = 0;
  std::string out_prefix;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--db" && i + 1 < argc) {
      db_dir = argv[++i];
    } else if (arg == "--gen" && i + 1 < argc) {
      gen = argv[++i];
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::stod(argv[++i]);
    } else if (arg == "--partition" && i + 1 < argc) {
      partition_csv = argv[++i];
    } else if (arg == "--k" && i + 1 < argc) {
      k = static_cast<size_t>(std::stoul(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_prefix = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage(std::cout);
      return 0;
    } else {
      std::cerr << "xplain_shard: unknown argument '" << arg << "'\n";
      return Usage(std::cerr);
    }
  }
  if (db_dir.empty() == gen.empty() || partition_csv.empty() || k == 0 ||
      out_prefix.empty()) {
    std::cerr << "xplain_shard: pass exactly one of --db/--gen plus "
                 "--partition, --k, and --out\n";
    return Usage(std::cerr);
  }

  xplain::Result<xplain::Database> db =
      [&]() -> xplain::Result<xplain::Database> {
    if (!db_dir.empty()) return xplain::LoadDatabase(db_dir);
    if (gen != "dblp") {
      return xplain::Status::InvalidArgument("unknown generator '" + gen +
                                             "' (only dblp is served)");
    }
    xplain::datagen::DblpOptions options;
    options.scale = scale;
    return xplain::datagen::GenerateDblp(options);
  }();
  if (!db.ok()) {
    std::cerr << "xplain_shard: " << db.status().ToString() << "\n";
    return 1;
  }

  const std::vector<std::string> attrs = xplain::Split(partition_csv, ',');
  xplain::Result<xplain::cluster::ShardMap> map =
      xplain::cluster::ShardMap::Create(*db, attrs, k);
  if (!map.ok()) {
    std::cerr << "xplain_shard: " << map.status().ToString() << "\n";
    return 1;
  }
  xplain::Result<std::vector<xplain::Database>> shards =
      xplain::cluster::PartitionDatabase(*db, *map);
  if (!shards.ok()) {
    std::cerr << "xplain_shard: " << shards.status().ToString() << "\n";
    return 1;
  }

  for (size_t s = 0; s < shards->size(); ++s) {
    const std::string dir = out_prefix + std::to_string(s);
    const xplain::Status saved = xplain::SaveDatabase((*shards)[s], dir);
    if (!saved.ok()) {
      std::cerr << "xplain_shard: " << saved.ToString() << "\n";
      return 1;
    }
    std::cout << "shard " << s << " -> " << dir;
    for (int r = 0; r < (*shards)[s].num_relations(); ++r) {
      std::cout << " " << (*shards)[s].relation(r).schema().name() << "="
                << (*shards)[s].relation(r).NumRows();
    }
    std::cout << std::endl;
  }
  return 0;
}
