// Figure 10: top-5 (minimal) explanations by intervention for Q_Race and
// Q_Marital over five candidate attributes. The paper's answers are very
// general (one or two bound attributes) subpopulations: married mothers,
// first-trimester prenatal care, non-smokers, highly educated, age 30-34.
// The same flavors must dominate here, and every intervention must move Q
// in the inhibiting direction (Q(D - Delta) < Q(D) for dir = high).
// Each question is additionally swept over 1/2/4/8 worker threads
// (ExplainOptions::num_threads); the ranked answers must be identical at
// every thread count (DESIGN.md §6).

#include "bench/bench_util.h"
#include "core/engine.h"
#include "datagen/natality.h"

namespace xplain {
namespace {

using bench::Fmt;
using bench::JsonReporter;
using bench::PrintHeader;
using bench::Unwrap;

/// True when the two rankings agree exactly: same rows, same degrees bit
/// for bit (COUNT-based natality questions carry no fp merge slack).
bool SameAnswers(const std::vector<RankedExplanation>& a,
                 const std::vector<RankedExplanation>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].m_row != b[i].m_row || a[i].degree != b[i].degree) return false;
  }
  return true;
}

bool Run(const Database& db, const ExplainEngine& engine,
         const UserQuestion& question, const char* title, const char* tag,
         const std::vector<std::string>& attrs, JsonReporter* json) {
  PrintHeader(title);
  double q_d = Unwrap(question.query.Evaluate(db));
  std::cout << "Q(D) = " << Fmt(q_d) << "\n";
  ExplainOptions options;
  options.top_k = 5;
  options.min_support = 1000;  // the paper's support threshold
  options.minimality = MinimalityStrategy::kAppend;
  std::vector<RankedExplanation> baseline;
  double baseline_s = 1.0;
  for (int threads : {1, 2, 4, 8}) {
    options.num_threads = threads;
    Stopwatch watch;
    ExplainReport report =
        Unwrap(engine.Explain(question, attrs, options), title);
    double elapsed = watch.ElapsedSeconds();
    json->Add(std::string(tag) + "/explain", threads, elapsed * 1000.0);
    if (threads == 1) {
      baseline = report.explanations;
      baseline_s = elapsed;
      int rank = 1;
      for (const RankedExplanation& e : report.explanations) {
        // mu_interv = -Q(D - Delta) for dir = high.
        std::cout << "  " << rank++ << ". " << e.explanation.ToString(db)
                  << "  mu_interv=" << Fmt(e.degree) << "  Q(D-Delta)="
                  << Fmt(-e.degree) << "\n";
      }
      std::cout << "  time: " << Fmt(elapsed)
                << " s (cube+join+top-5, paper: < 4 s on 4M rows)\n";
    } else {
      if (!SameAnswers(baseline, report.explanations)) {
        std::cerr << "PARALLEL MISMATCH at " << threads << " threads for "
                  << tag << "\n";
        return false;
      }
      std::cout << "  threads=" << threads << ": " << Fmt(elapsed) << " s ("
                << Fmt(baseline_s / std::max(elapsed, 1e-6), 2)
                << "x), answers identical\n";
    }
  }
  return true;
}

}  // namespace
}  // namespace xplain

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  JsonReporter json("fig10_topk_interv");

  datagen::NatalityOptions options;
  options.num_rows = 400000;
  Database db = Unwrap(datagen::GenerateNatality(options));
  ExplainEngine engine = Unwrap(ExplainEngine::Create(&db));
  std::cout << "synthetic natality: " << db.TotalRows() << " rows\n";

  bool ok = true;
  ok = Run(db, engine, Unwrap(datagen::MakeNatalityQRace(db)),
           "Figure 10 (left): top-5 minimal explanations by intervention, "
           "Q_Race",
           "fig10/q_race",
           {"Birth.age", "Birth.tobacco", "Birth.prenatal", "Birth.education",
            "Birth.marital"},
           &json) &&
       ok;
  ok = Run(db, engine, Unwrap(datagen::MakeNatalityQMarital(db)),
           "Figure 10 (right): top-5 minimal explanations by intervention, "
           "Q_Marital",
           "fig10/q_marital",
           {"Birth.age", "Birth.tobacco", "Birth.prenatal", "Birth.education",
            "Birth.race"},
           &json) &&
       ok;
  // The paper also ran Q'_Race = (Asian ratio)/(Black ratio) and reports
  // "similar observations" with the details omitted; regenerate them here.
  ok = Run(db, engine, Unwrap(datagen::MakeNatalityQRacePrime(db)),
           "Section 5.1 (omitted in paper): top-5 by intervention, Q'_Race",
           "fig10/q_race_prime",
           {"Birth.age", "Birth.tobacco", "Birth.prenatal", "Birth.education",
            "Birth.marital"},
           &json) &&
       ok;
  return ok ? 0 : 1;
}
