// Figure 10: top-5 (minimal) explanations by intervention for Q_Race and
// Q_Marital over five candidate attributes. The paper's answers are very
// general (one or two bound attributes) subpopulations: married mothers,
// first-trimester prenatal care, non-smokers, highly educated, age 30-34.
// The same flavors must dominate here, and every intervention must move Q
// in the inhibiting direction (Q(D - Delta) < Q(D) for dir = high).

#include "bench/bench_util.h"
#include "core/engine.h"
#include "datagen/natality.h"

namespace xplain {
namespace {

using bench::Fmt;
using bench::PrintHeader;
using bench::Unwrap;

void Run(const Database& db, const ExplainEngine& engine,
         const UserQuestion& question, const char* title,
         const std::vector<std::string>& attrs) {
  PrintHeader(title);
  double q_d = Unwrap(question.query.Evaluate(db));
  std::cout << "Q(D) = " << Fmt(q_d) << "\n";
  ExplainOptions options;
  options.top_k = 5;
  options.min_support = 1000;  // the paper's support threshold
  options.minimality = MinimalityStrategy::kAppend;
  Stopwatch watch;
  ExplainReport report =
      Unwrap(engine.Explain(question, attrs, options), title);
  double elapsed = watch.ElapsedSeconds();
  int rank = 1;
  for (const RankedExplanation& e : report.explanations) {
    // mu_interv = -Q(D - Delta) for dir = high.
    std::cout << "  " << rank++ << ". " << e.explanation.ToString(db)
              << "  mu_interv=" << Fmt(e.degree) << "  Q(D-Delta)="
              << Fmt(-e.degree) << "\n";
  }
  std::cout << "  time: " << Fmt(elapsed)
            << " s (cube+join+top-5, paper: < 4 s on 4M rows)\n";
}

}  // namespace
}  // namespace xplain

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  datagen::NatalityOptions options;
  options.num_rows = 400000;
  Database db = Unwrap(datagen::GenerateNatality(options));
  ExplainEngine engine = Unwrap(ExplainEngine::Create(&db));
  std::cout << "synthetic natality: " << db.TotalRows() << " rows\n";

  Run(db, engine, Unwrap(datagen::MakeNatalityQRace(db)),
      "Figure 10 (left): top-5 minimal explanations by intervention, Q_Race",
      {"Birth.age", "Birth.tobacco", "Birth.prenatal", "Birth.education",
       "Birth.marital"});
  Run(db, engine, Unwrap(datagen::MakeNatalityQMarital(db)),
      "Figure 10 (right): top-5 minimal explanations by intervention, "
      "Q_Marital",
      {"Birth.age", "Birth.tobacco", "Birth.prenatal", "Birth.education",
       "Birth.race"});
  // The paper also ran Q'_Race = (Asian ratio)/(Black ratio) and reports
  // "similar observations" with the details omitted; regenerate them here.
  Run(db, engine, Unwrap(datagen::MakeNatalityQRacePrime(db)),
      "Section 5.1 (omitted in paper): top-5 by intervention, Q'_Race",
      {"Birth.age", "Birth.tobacco", "Birth.prenatal", "Birth.education",
       "Birth.marital"});
  return 0;
}
