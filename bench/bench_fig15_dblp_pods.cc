// Figure 15 and the Section 5.2 timings: (a) the percentage of SIGMOD and
// PODS publications per country, 2001-2011 -- the UK anomalously publishes
// more PODS than SIGMOD papers; (b) the top explanations by intervention
// for the user question (Q = q1/q2, low); plus the paper's two timing
// claims: table M materializes in interactive time and the top-50
// self-join over the small M is sub-millisecond-scale.

#include "bench/bench_util.h"
#include "core/engine.h"
#include "core/topk.h"
#include "datagen/dblp.h"
#include "relational/parser.h"
#include "util/thread_pool.h"

namespace xplain {
namespace {

using bench::Fmt;
using bench::PrintHeader;
using bench::PrintRow;
using bench::Unwrap;

double CountVenue(const Database& db, const UniversalRelation& u,
                  const std::string& venue, const std::string& country) {
  AggregateSpec agg = AggregateSpec::CountDistinct(
      Unwrap(db.ResolveColumn("Publication.pubid")));
  DnfPredicate where = Unwrap(ParsePredicate(
      db, "Publication.venue = '" + venue + "' AND Author.country = '" +
              country + "' AND Publication.year >= 2001 AND "
              "Publication.year <= 2011"));
  return EvaluateAggregate(u, agg, &where).AsNumeric();
}

}  // namespace
}  // namespace xplain

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  JsonReporter json("fig15_dblp_pods");
  datagen::DblpOptions options;
  options.scale = 1.0;
  Database db = Unwrap(datagen::GenerateDblp(options));
  ExplainEngine engine = Unwrap(ExplainEngine::Create(&db));
  const UniversalRelation& u = engine.universal();

  PrintHeader("Figure 15a: SIGMOD vs PODS share per country, 2001-2011");
  PrintRow({"country", "SIGMOD", "PODS", "%PODS"});
  for (const char* country : {"USA", "UK"}) {
    double sigmod = CountVenue(db, u, "SIGMOD", country);
    double pods = CountVenue(db, u, "PODS", country);
    PrintRow({country, Fmt(sigmod, 0), Fmt(pods, 0),
              Fmt(100.0 * pods / std::max(sigmod + pods, 1.0), 1) + "%"});
  }
  std::cout << "shape check: >50% of UK papers are PODS; USA is far below "
               "(paper Figure 15a).\n";

  PrintHeader("Figure 15b: top explanations by intervention (Q=q1/q2, low)");
  UserQuestion question = Unwrap(datagen::MakeUkPodsQuestion(db));
  std::cout << "Q(D) = " << Fmt(Unwrap(question.query.Evaluate(db)))
            << " (SIGMOD/PODS ratio for the UK)\n";

  Stopwatch m_watch;
  ExplainOptions explain;
  explain.top_k = 6;
  explain.minimality = MinimalityStrategy::kSelfJoin;
  ExplainReport report = Unwrap(engine.Explain(
      question, {"Author.name", "Author.inst", "Author.city"}, explain));
  double m_seconds = m_watch.ElapsedSeconds();
  int rank = 1;
  for (const RankedExplanation& e : report.explanations) {
    std::cout << "  " << rank++ << ". " << e.explanation.ToString(db)
              << "  mu_interv=" << Fmt(e.degree) << "\n";
  }

  // Section 5.2 timing claims.
  Stopwatch topk_watch;
  auto top50 = TopKExplanations(report.table, DegreeKind::kIntervention, 50,
                                MinimalityStrategy::kSelfJoin);
  double topk_ms = topk_watch.ElapsedMillis();
  json.Add("fig15/explain", ThreadPool::DefaultNumThreads(),
           m_seconds * 1000.0);
  json.Add("fig15/top50_self_join", 1, topk_ms);
  std::cout << "table M: " << report.table.NumRows() << " rows in "
            << Fmt(m_seconds)
            << " s (paper: 2.176 s on SQLServer); top-50 self-join: "
            << Fmt(topk_ms) << " ms over " << top50.size()
            << " results (paper: < 4 ms)\n";
  return 0;
}
