// Figure 14: time to output the minimal top-K explanations (K = 10) from
// the stored table M, comparing the three strategies of Section 4.3:
// No-Minimal, Minimal-self-join, and Minimal-append, as the number of
// candidate attributes grows. Shapes to reproduce: No-Minimal is cheapest;
// self-join wins for few attributes (small M); append wins as M grows
// (the self-join is quadratic in |M|).

#include "bench/bench_util.h"
#include "core/cube_algorithm.h"
#include "core/topk.h"
#include "datagen/natality.h"
#include "relational/universal.h"

namespace xplain {
namespace {

using bench::Fmt;
using bench::PrintHeader;
using bench::PrintRow;
using bench::Unwrap;

double TimeTopK(const TableM& table, MinimalityStrategy strategy) {
  Stopwatch watch;
  auto out = TopKExplanations(table, DegreeKind::kIntervention, 10, strategy);
  (void)out;
  return watch.ElapsedSeconds();
}

}  // namespace
}  // namespace xplain

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  const std::vector<std::string> kAttrs = {
      "Birth.age",       "Birth.tobacco",  "Birth.prenatal",
      "Birth.education", "Birth.marital",  "Birth.sex",
      "Birth.hypertension", "Birth.diabetes"};

  JsonReporter json("fig14_minimal_topk");
  datagen::NatalityOptions options;
  options.num_rows = 400000;
  Database db = Unwrap(datagen::GenerateNatality(options));
  UniversalRelation u = Unwrap(UniversalRelation::Build(db));
  UserQuestion question = Unwrap(datagen::MakeNatalityQRace(db));

  PrintHeader("Figure 14: minimal top-10 strategies vs #attributes");
  PrintRow({"attrs", "|M|", "no_minimal_s", "self_join_s", "append_s"});
  for (size_t num_attrs = 2; num_attrs <= kAttrs.size(); ++num_attrs) {
    std::vector<ColumnRef> attrs;
    for (size_t i = 0; i < num_attrs; ++i) {
      attrs.push_back(Unwrap(db.ResolveColumn(kAttrs[i])));
    }
    // The paper materializes M once (Figure 13) and then runs top-K on the
    // stored table; we do the same and time only the top-K step.
    TableM table = Unwrap(ComputeTableM(u, question, attrs));
    double none_s = TimeTopK(table, MinimalityStrategy::kNone);
    // The pairwise self-join is quadratic in |M|; past ~25k rows a single
    // data point would dominate the whole harness, and the crossover vs
    // append is already visible, so we stop timing it there.
    const bool run_self_join = table.NumRows() <= 25000;
    double self_s =
        run_self_join ? TimeTopK(table, MinimalityStrategy::kSelfJoin) : -1;
    double append_s = TimeTopK(table, MinimalityStrategy::kAppend);
    PrintRow({std::to_string(num_attrs), std::to_string(table.NumRows()),
              Fmt(none_s, 4),
              run_self_join ? Fmt(self_s, 4) : std::string("(skipped)"),
              Fmt(append_s, 4)});
    const std::string prefix = "fig14/attrs=" + std::to_string(num_attrs);
    json.Add(prefix + "/no_minimal", 1, none_s * 1000.0);
    if (run_self_join) json.Add(prefix + "/self_join", 1, self_s * 1000.0);
    json.Add(prefix + "/append", 1, append_s * 1000.0);
  }
  std::cout << "shape check: no-minimal cheapest; self-join best for small "
               "M, append overtakes it as M grows (paper Figure 14).\n";

  // The paper also notes the 5th-ranked Figure 10 explanation is the 14th
  // without minimality: show the analogous redundancy here.
  std::vector<ColumnRef> attrs;
  for (size_t i = 0; i < 5; ++i) {
    attrs.push_back(Unwrap(db.ResolveColumn(kAttrs[i])));
  }
  TableMOptions mopts;
  mopts.min_support = 1000;
  TableM table = Unwrap(ComputeTableM(u, question, attrs, mopts));
  auto minimal = TopKExplanations(table, DegreeKind::kIntervention, 5,
                                  MinimalityStrategy::kAppend);
  auto raw = TopKExplanations(table, DegreeKind::kIntervention, 50,
                              MinimalityStrategy::kNone);
  if (!minimal.empty()) {
    size_t target = minimal.back().m_row;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i].m_row == target) {
        std::cout << "redundancy check: minimal rank-5 explanation sits at "
                  << "raw rank " << (i + 1) << " without minimality\n";
        break;
      }
    }
  }
  return 0;
}
