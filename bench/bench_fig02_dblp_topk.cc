// Figure 2: the top explanations (by intervention) for the Figure 1 bump.
// The paper's ranking surfaces industrial labs that were strong in the
// 90s/early-2000s (ibm.com, bell-labs.com), their prolific authors
// (Rajeev Rastogi, Hamid Pirahesh, Rakesh Agrawal), and rising academic
// groups (asu.edu, utah.edu, gwu.edu). Our synthetic workload plants the
// same structure; the ranking below should be dominated by those names.

#include "bench/bench_util.h"
#include "core/engine.h"
#include "datagen/dblp.h"
#include "util/thread_pool.h"

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  JsonReporter json("fig02_dblp_topk");
  datagen::DblpOptions options;
  options.scale = 1.0;
  Database db = Unwrap(datagen::GenerateDblp(options), "GenerateDblp");
  ExplainEngine engine = Unwrap(ExplainEngine::Create(&db));
  UserQuestion question = Unwrap(datagen::MakeDblpBumpQuestion(db));

  PrintHeader("Figure 2: top explanations for the SIGMOD industry bump");
  std::cout << "Q = (q1/q2)/(q3/q4), dir = high, Q(D) = "
            << Fmt(Unwrap(question.query.Evaluate(db))) << "\n";

  Stopwatch watch;
  ExplainOptions explain;
  explain.top_k = 9;
  explain.minimality = MinimalityStrategy::kAppend;
  ExplainReport report = Unwrap(
      engine.Explain(question, {"Author.name", "Author.inst"}, explain),
      "Explain");
  double elapsed = watch.ElapsedSeconds();
  // num_threads = 0 resolves to one worker per hardware core.
  json.Add("fig02/explain", ThreadPool::DefaultNumThreads(), elapsed * 1000.0);

  PrintRow({"rank", "explanation", "mu_interv"}, 10);
  int rank = 1;
  for (const RankedExplanation& e : report.explanations) {
    std::cout << rank++ << "   " << e.explanation.ToString(db)
              << "   mu_interv=" << Fmt(e.degree) << "\n";
  }
  std::cout << "additive: " << report.additivity.reason << "\n";
  std::cout << "explain time: " << Fmt(elapsed) << " s (paper: interactive"
            << " on SQLServer)\n";
  return 0;
}
