// Figure 11: top-3 (minimal) explanations by aggravation for Q_Race and
// Q_Marital. The paper's observation to reproduce: aggravation picks more
// *specific* conjunctions (2-4 bound attributes, smaller support) than
// intervention does, and restricting to those cells pushes Q far above its
// original value.

#include "bench/bench_util.h"
#include "core/engine.h"
#include "datagen/natality.h"
#include "util/thread_pool.h"

namespace xplain {
namespace {

using bench::Fmt;
using bench::JsonReporter;
using bench::PrintHeader;
using bench::Unwrap;

double Run(const Database& db, const ExplainEngine& engine,
           const UserQuestion& question, const char* title, const char* tag,
           const std::vector<std::string>& attrs, JsonReporter* json) {
  PrintHeader(title);
  double q_d = Unwrap(question.query.Evaluate(db));
  std::cout << "Q(D) = " << Fmt(q_d) << "\n";
  ExplainOptions options;
  options.top_k = 3;
  options.degree = DegreeKind::kAggravation;
  options.min_support = 1000;
  options.minimality = MinimalityStrategy::kAppend;
  Stopwatch watch;
  ExplainReport report =
      Unwrap(engine.Explain(question, attrs, options), title);
  json->Add(tag, ThreadPool::DefaultNumThreads(), watch.ElapsedMillis());
  int rank = 1;
  double total_bound = 0;
  for (const RankedExplanation& e : report.explanations) {
    std::cout << "  " << rank++ << ". " << e.explanation.ToString(db)
              << "  mu_aggr=" << Fmt(e.degree) << "\n";
    total_bound += e.explanation.NumBound();
  }
  return report.explanations.empty()
             ? 0.0
             : total_bound / report.explanations.size();
}

}  // namespace
}  // namespace xplain

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  JsonReporter json("fig11_topk_aggr");
  datagen::NatalityOptions options;
  options.num_rows = 400000;
  Database db = Unwrap(datagen::GenerateNatality(options));
  ExplainEngine engine = Unwrap(ExplainEngine::Create(&db));
  std::cout << "synthetic natality: " << db.TotalRows() << " rows\n";

  std::vector<std::string> race_attrs = {"Birth.age", "Birth.tobacco",
                                         "Birth.prenatal", "Birth.education",
                                         "Birth.marital"};
  std::vector<std::string> marital_attrs = {"Birth.age", "Birth.tobacco",
                                            "Birth.prenatal",
                                            "Birth.education", "Birth.race"};
  double aggr_bound = Run(
      db, engine, Unwrap(datagen::MakeNatalityQRace(db)),
      "Figure 11 (left): top-3 minimal explanations by aggravation, Q_Race",
      "fig11/q_race_aggr", race_attrs, &json);
  Run(db, engine, Unwrap(datagen::MakeNatalityQMarital(db)),
      "Figure 11 (right): top-3 minimal explanations by aggravation, "
      "Q_Marital",
      "fig11/q_marital_aggr", marital_attrs, &json);

  // Shape check against Figure 10: aggravation answers are more specific.
  ExplainOptions interv;
  interv.top_k = 5;
  interv.min_support = 1000;
  ExplainReport interv_report = Unwrap(engine.Explain(
      Unwrap(datagen::MakeNatalityQRace(db)), race_attrs, interv));
  double interv_bound = 0;
  for (const RankedExplanation& e : interv_report.explanations) {
    interv_bound += e.explanation.NumBound();
  }
  interv_bound /= std::max<size_t>(1, interv_report.explanations.size());
  std::cout << "\nshape check: avg bound attrs -- aggravation "
            << Fmt(aggr_bound, 2) << " vs intervention "
            << Fmt(interv_bound, 2) << " (paper: aggravation more specific)\n";
  return 0;
}
