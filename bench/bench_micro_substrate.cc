// Micro-benchmarks (google-benchmark) for the relational substrate and the
// intervention engine: universal-relation assembly, semijoin reduction,
// cube computation, predicate scans, and the program-P fixpoint, on the
// synthetic DBLP workload.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/intervention.h"
#include "datagen/dblp.h"
#include "datagen/natality.h"
#include "relational/cube.h"
#include "relational/join.h"
#include "relational/parser.h"
#include "relational/universal.h"

namespace xplain {
namespace {

const Database& DblpDb() {
  static Database* db = [] {
    datagen::DblpOptions options;
    options.scale = 0.5;
    auto result = datagen::GenerateDblp(options);
    XPLAIN_CHECK(result.ok());
    return new Database(std::move(result).ValueOrDie());
  }();
  return *db;
}

const Database& NatalityDb() {
  static Database* db = [] {
    datagen::NatalityOptions options;
    options.num_rows = 100000;
    auto result = datagen::GenerateNatality(options);
    XPLAIN_CHECK(result.ok());
    return new Database(std::move(result).ValueOrDie());
  }();
  return *db;
}

const UniversalRelation& DblpUniversal() {
  static UniversalRelation* u = [] {
    auto result = UniversalRelation::Build(DblpDb());
    XPLAIN_CHECK(result.ok());
    return new UniversalRelation(std::move(result).ValueOrDie());
  }();
  return *u;
}

void BM_UniversalBuild(benchmark::State& state) {
  const Database& db = DblpDb();
  for (auto _ : state) {
    auto u = UniversalRelation::Build(db);
    benchmark::DoNotOptimize(u);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.TotalRows()));
}
BENCHMARK(BM_UniversalBuild);

void BM_SemijoinReduce(benchmark::State& state) {
  const Database& db = DblpDb();
  for (auto _ : state) {
    DeltaSet dangling = db.EmptyDelta();
    // Delete 1% of publications and measure the reduction cascade.
    const Relation& pubs = db.RelationByName("Publication");
    int pub_idx = *db.RelationIndex("Publication");
    for (size_t i = 0; i < pubs.NumRows(); i += 100) dangling[pub_idx].Set(i);
    benchmark::DoNotOptimize(MarkDanglingRows(db, &dangling));
  }
}
BENCHMARK(BM_SemijoinReduce);

void BM_PredicateScan(benchmark::State& state) {
  const Database& db = DblpDb();
  const UniversalRelation& u = DblpUniversal();
  auto phi = ParseDnfPredicate(
      db, "Publication.venue = 'SIGMOD' AND Author.dom = 'com'");
  XPLAIN_CHECK(phi.ok());
  for (auto _ : state) {
    Value v = EvaluateAggregate(u, AggregateSpec::CountStar(), &*phi);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(u.NumRows()));
}
BENCHMARK(BM_PredicateScan);

void BM_CubeNatality(benchmark::State& state) {
  const Database& db = NatalityDb();
  static UniversalRelation* u = [] {
    auto result = UniversalRelation::Build(NatalityDb());
    XPLAIN_CHECK(result.ok());
    return new UniversalRelation(std::move(result).ValueOrDie());
  }();
  const int num_attrs = static_cast<int>(state.range(0));
  const char* names[] = {"Birth.age", "Birth.tobacco", "Birth.prenatal",
                         "Birth.education", "Birth.marital", "Birth.sex"};
  std::vector<ColumnRef> attrs;
  for (int i = 0; i < num_attrs; ++i) {
    attrs.push_back(*db.ResolveColumn(names[i]));
  }
  for (auto _ : state) {
    auto cube =
        DataCube::Compute(*u, attrs, AggregateSpec::CountStar(), nullptr);
    benchmark::DoNotOptimize(cube);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(u->NumRows()));
}
BENCHMARK(BM_CubeNatality)->Arg(2)->Arg(4)->Arg(6);

void BM_InterventionFixpoint(benchmark::State& state) {
  const Database& db = DblpDb();
  const UniversalRelation& u = DblpUniversal();
  InterventionEngine engine(&u);
  auto phi = ParsePredicate(db, "Author.inst = 'ibm.com'");
  XPLAIN_CHECK(phi.ok());
  for (auto _ : state) {
    auto result = engine.Compute(*phi);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(u.NumRows()));
}
BENCHMARK(BM_InterventionFixpoint);

void BM_HashJoinAuthored(benchmark::State& state) {
  const Database& db = DblpDb();
  const Relation& authored = db.RelationByName("Authored");
  const Relation& author = db.RelationByName("Author");
  for (auto _ : state) {
    auto pairs = HashJoin(authored, author, JoinKeys{{0}, {0}});
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(authored.NumRows()));
}
BENCHMARK(BM_HashJoinAuthored);

void BM_SortMergeJoinAuthored(benchmark::State& state) {
  const Database& db = DblpDb();
  const Relation& authored = db.RelationByName("Authored");
  const Relation& author = db.RelationByName("Author");
  for (auto _ : state) {
    auto pairs = SortMergeJoin(authored, author, JoinKeys{{0}, {0}});
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(authored.NumRows()));
}
BENCHMARK(BM_SortMergeJoinAuthored);

void BM_HashIndexBuild(benchmark::State& state) {
  const Relation& authored = DblpDb().RelationByName("Authored");
  for (auto _ : state) {
    HashIndex index = HashIndex::Build(authored, {1});
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(authored.NumRows()));
}
BENCHMARK(BM_HashIndexBuild);

/// Console reporter that additionally records every finished run into the
/// repo-wide BENCH_<name>.json format (bench_util.h JsonReporter).
class JsonForwardingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonForwardingReporter(bench::JsonReporter* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // GetAdjustedRealTime is per-iteration real time expressed in the
      // run's time unit; normalize to milliseconds.
      const double ms = run.GetAdjustedRealTime() /
                        benchmark::GetTimeUnitMultiplier(run.time_unit) *
                        1000.0;
      json_->Add(run.benchmark_name(), run.threads, ms);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::JsonReporter* json_;
};

}  // namespace
}  // namespace xplain

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  xplain::bench::JsonReporter json("micro_substrate");
  xplain::JsonForwardingReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
