// Figure 1: number of SIGMOD publications in five-year windows, broken
// down into industry ('com') and academia ('edu'). Regenerates the series
// behind the paper's motivating plot from the synthetic DBLP workload: the
// claim to reproduce is the *shape* -- both series rise until the early
// 2000s, after which 'com' declines while 'edu' keeps rising.

#include "bench/bench_util.h"
#include "datagen/dblp.h"
#include "relational/parser.h"
#include "relational/universal.h"

namespace xplain {
namespace {

using bench::Fmt;
using bench::PrintHeader;
using bench::PrintRow;
using bench::Unwrap;

double CountWindow(const Database& db, const UniversalRelation& u,
                   const std::string& dom, int from, int to) {
  AggregateSpec agg = AggregateSpec::CountDistinct(
      Unwrap(db.ResolveColumn("Publication.pubid")));
  DnfPredicate where = Unwrap(ParsePredicate(
      db, "Publication.venue = 'SIGMOD' AND Author.dom = '" + dom +
              "' AND Publication.year >= " + std::to_string(from) +
              " AND Publication.year <= " + std::to_string(to)));
  return EvaluateAggregate(u, agg, &where).AsNumeric();
}

}  // namespace
}  // namespace xplain

int main() {
  using namespace xplain;  // NOLINT
  using namespace xplain::bench;  // NOLINT

  JsonReporter json("fig01_dblp_series");
  datagen::DblpOptions options;
  options.scale = 1.0;
  Stopwatch gen_watch;
  Database db = Unwrap(datagen::GenerateDblp(options), "GenerateDblp");
  UniversalRelation u = Unwrap(UniversalRelation::Build(db));
  json.Add("fig01/generate+join", 1, gen_watch.ElapsedMillis());
  PrintHeader("Figure 1: SIGMOD papers per 5-year window, com vs edu");
  std::cout << "dataset: " << db.RelationByName("Author").NumRows()
            << " authors / " << db.RelationByName("Authored").NumRows()
            << " authorships / " << db.RelationByName("Publication").NumRows()
            << " publications (generated+joined in "
            << Fmt(gen_watch.ElapsedSeconds()) << " s)\n";
  PrintRow({"window", "com", "edu"});
  Stopwatch series_watch;
  double com_peak = 0, com_last = 0, edu_first = -1, edu_last = 0;
  for (int start = options.year_begin; start + 4 <= options.year_end;
       start += 3) {
    double com = CountWindow(db, u, "com", start, start + 4);
    double edu = CountWindow(db, u, "edu", start, start + 4);
    PrintRow({std::to_string(start) + "-" + std::to_string(start + 4),
              Fmt(com, 0), Fmt(edu, 0)});
    com_peak = std::max(com_peak, com);
    com_last = com;
    if (edu_first < 0) edu_first = edu;
    edu_last = edu;
  }
  json.Add("fig01/window_series", 1, series_watch.ElapsedMillis());
  std::cout << "shape check: com declines from its peak ("
            << Fmt(com_peak, 0) << " -> " << Fmt(com_last, 0)
            << "), edu rises (" << Fmt(edu_first, 0) << " -> "
            << Fmt(edu_last, 0) << ")\n";
  return 0;
}
