// Ablation: the dictionary-encoded columnar cube path (ColumnCache +
// CodedFilter + DataCube::ComputeCached) vs the generic row-at-a-time path
// (DataCube::Compute) inside Algorithm 1. Both produce identical tables M.
//
// The design question DESIGN.md calls out: is one dictionary-encoding pass
// worth it before the m group-bys? The encoding happens per *base* row
// (cheap on joins) and turns group-by keys and WHERE clauses into integer
// work; the generic path hashes Value tuples per universal row but skips
// the extra pass. The printed table reports which effect wins per
// workload shape.

#include "bench/bench_util.h"
#include "core/cube_algorithm.h"
#include "datagen/dblp.h"
#include "datagen/natality.h"
#include "relational/universal.h"

namespace xplain {
namespace {

using bench::Fmt;
using bench::PrintHeader;
using bench::PrintRow;
using bench::Unwrap;

void RunComparison(const UniversalRelation& u, const UserQuestion& question,
                   const std::vector<ColumnRef>& attrs, const char* label,
                   bench::JsonReporter* json) {
  TableMOptions generic;
  generic.use_column_cache = false;
  TableMOptions columnar;
  columnar.use_column_cache = true;

  Stopwatch g_watch;
  TableM g = Unwrap(ComputeTableM(u, question, attrs, generic));
  double g_s = g_watch.ElapsedSeconds();
  Stopwatch c_watch;
  TableM c = Unwrap(ComputeTableM(u, question, attrs, columnar));
  double c_s = c_watch.ElapsedSeconds();

  // Sanity: identical tables.
  if (g.NumRows() != c.NumRows()) {
    std::cerr << "MISMATCH: generic " << g.NumRows() << " vs columnar "
              << c.NumRows() << " rows\n";
    std::exit(1);
  }
  for (size_t row = 0; row < c.NumRows(); ++row) {
    int64_t g_row = g.FindRow(c.coords[row]);
    if (g_row < 0 || g.mu_interv[g_row] != c.mu_interv[row]) {
      std::cerr << "MISMATCH at row " << row << "\n";
      std::exit(1);
    }
  }
  PrintRow({label, Fmt(g_s), Fmt(c_s),
            Fmt(g_s / std::max(c_s, 1e-9), 1) + "x",
            std::to_string(c.NumRows())});
  json->Add(std::string("ablation_cube/") + label + "/generic", 1,
            g_s * 1000.0);
  json->Add(std::string("ablation_cube/") + label + "/columnar", 1,
            c_s * 1000.0);
}

}  // namespace
}  // namespace xplain

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  JsonReporter json("ablation_cube");
  PrintHeader("Ablation: columnar (cached) vs generic cube in Algorithm 1");
  PrintRow({"workload", "generic_s", "columnar_s", "speedup", "cells"});

  // DBLP: three-way join, 4 count(distinct pubid) cubes (the Figure 2
  // question), attrs over Author.
  {
    datagen::DblpOptions options;
    options.scale = 4.0;
    Database db = Unwrap(datagen::GenerateDblp(options));
    UniversalRelation u = Unwrap(UniversalRelation::Build(db));
    UserQuestion question = Unwrap(datagen::MakeDblpBumpQuestion(db));
    std::vector<ColumnRef> attrs = {
        Unwrap(db.ResolveColumn("Author.name")),
        Unwrap(db.ResolveColumn("Author.inst"))};
    RunComparison(u, question, attrs, "dblp-join", &json);
  }

  // Natality: single table, 4 count(*) cubes (Q_Marital), 2..6 attrs.
  datagen::NatalityOptions options;
  options.num_rows = 300000;
  Database db = Unwrap(datagen::GenerateNatality(options));
  UniversalRelation u = Unwrap(UniversalRelation::Build(db));
  UserQuestion question = Unwrap(datagen::MakeNatalityQMarital(db));
  const std::vector<std::string> kAttrs = {
      "Birth.age", "Birth.tobacco", "Birth.prenatal", "Birth.education",
      "Birth.marital", "Birth.sex"};
  for (size_t num_attrs = 2; num_attrs <= kAttrs.size(); num_attrs += 2) {
    std::vector<ColumnRef> attrs;
    for (size_t i = 0; i < num_attrs; ++i) {
      attrs.push_back(Unwrap(db.ResolveColumn(kAttrs[i])));
    }
    std::string label = "natality-d" + std::to_string(num_attrs);
    RunComparison(u, question, attrs, label.c_str(), &json);
  }
  std::cout << "finding: near parity at these scales -- the encoding pass "
               "costs about what the integer group-bys save, and either "
               "cube path is orders of magnitude below the No-Cube "
               "baseline (Figure 12), which is where the paper's real gap "
               "lives.\n";
  return 0;
}
