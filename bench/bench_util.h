#ifndef XPLAIN_BENCH_BENCH_UTIL_H_
#define XPLAIN_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/stopwatch.h"

namespace xplain {
namespace bench {

template <typename T>
T Unwrap(Result<T> result, const char* what = "") {
  if (!result.ok()) {
    std::cerr << "bench error " << what << ": " << result.status().ToString()
              << std::endl;
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

inline void PrintHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Prints one row of a fixed-width table.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::cout << std::left << std::setw(width) << cell;
  }
  std::cout << "\n";
}

inline std::string Fmt(double v, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace bench
}  // namespace xplain

#endif  // XPLAIN_BENCH_BENCH_UTIL_H_
