#ifndef XPLAIN_BENCH_BENCH_UTIL_H_
#define XPLAIN_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/result.h"
#include "util/stopwatch.h"

namespace xplain {
namespace bench {

template <typename T>
T Unwrap(Result<T> result, const char* what = "") {
  if (!result.ok()) {
    std::cerr << "bench error " << what << ": " << result.status().ToString()
              << std::endl;
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

inline void PrintHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Prints one row of a fixed-width table.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::cout << std::left << std::setw(width) << cell;
  }
  std::cout << "\n";
}

inline std::string Fmt(double v, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// The percentile estimator now lives in util/metrics (the server's STATS
/// payload computes p50/p99 with it too); benches keep addressing it as
/// bench::HistogramPercentile.
using ::xplain::HistogramPercentile;

/// Wall-clock samples of one measured configuration: `min_ms` is the least
/// noisy single sample, `median_ms` the robust central tendency reported as
/// the headline number (a single sample is both).
struct BenchTiming {
  double min_ms = 0.0;
  double median_ms = 0.0;
  std::vector<double> samples_ms;
};

/// Runs `fn` `warmup` times unmeasured (cache/allocator warm-up), then
/// `iterations` measured times, and returns min/median milliseconds.
/// CI uses iterations >= 3 so one descheduled run cannot skew a record.
template <typename Fn>
BenchTiming MeasureMs(Fn&& fn, int iterations = 3, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) fn();
  BenchTiming timing;
  const int n = std::max(iterations, 1);
  timing.samples_ms.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Stopwatch watch;
    fn();
    timing.samples_ms.push_back(watch.ElapsedSeconds() * 1000.0);
  }
  std::vector<double> sorted = timing.samples_ms;
  std::sort(sorted.begin(), sorted.end());
  timing.min_ms = sorted.front();
  const size_t mid = sorted.size() / 2;
  timing.median_ms = sorted.size() % 2 == 1
                         ? sorted[mid]
                         : (sorted[mid - 1] + sorted[mid]) / 2.0;
  return timing;
}

/// Machine-readable companion to the printed tables: collects one record
/// per measured configuration and writes `BENCH_<name>.json` into the
/// working directory. One object per bench binary:
///
///   {"bench": "<name>",
///    "records": [
///      {"workload": "<label>", "threads": <N>, "wall_ms": <X.XXX>}, ...]}
///
/// `threads` is the worker count the measured step actually used (1 for
/// the sequential paths). Construct one reporter at the top of main();
/// the destructor writes the file, or call Write() explicitly to flush
/// early (a second Write is a no-op).
///
/// Thread-safety: externally synchronized -- benches record from main().
class JsonReporter {
 public:
  explicit JsonReporter(std::string name) : name_(std::move(name)) {}
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;
  ~JsonReporter() { Write(); }

  void Add(const std::string& workload, int threads, double wall_ms) {
    records_.push_back(Record{workload, threads, wall_ms, -1.0, -1.0, {}});
  }

  /// Multi-sample record: wall_ms is the median (headline number), with
  /// wall_ms_min / wall_ms_median emitted alongside.
  void AddTiming(const std::string& workload, int threads,
                 const BenchTiming& timing) {
    records_.push_back(Record{workload, threads, timing.median_ms,
                              timing.min_ms, timing.median_ms, {}});
  }

  /// Record with extra flat stats keys (e.g. QueryStats::ToFlat()) merged
  /// into the record object; keys must not collide with
  /// workload/threads/wall_ms.
  void AddStats(const std::string& workload, int threads, double wall_ms,
                std::vector<std::pair<std::string, double>> stats) {
    records_.push_back(
        Record{workload, threads, wall_ms, -1.0, -1.0, std::move(stats)});
  }

  void Write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench error: cannot write " << path << std::endl;
      return;
    }
    out << "{\n  \"bench\": \"" << Escape(name_) << "\",\n  \"records\": [";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << (i == 0 ? "" : ",") << "\n    {\"workload\": \""
          << Escape(r.workload) << "\", \"threads\": " << r.threads
          << ", \"wall_ms\": " << Fmt(r.wall_ms);
      if (r.wall_ms_min >= 0.0) {
        out << ", \"wall_ms_min\": " << Fmt(r.wall_ms_min)
            << ", \"wall_ms_median\": " << Fmt(r.wall_ms_median);
      }
      for (const auto& [key, value] : r.stats) {
        out << ", \"" << Escape(key) << "\": " << Fmt(value);
      }
      out << "}";
    }
    out << "\n  ]\n}\n";
    std::cout << "wrote " << path << " (" << records_.size() << " records)\n";
  }

 private:
  struct Record {
    std::string workload;
    int threads;
    double wall_ms;
    double wall_ms_min;     // < 0: single-sample record, keys omitted
    double wall_ms_median;  // < 0: single-sample record, keys omitted
    std::vector<std::pair<std::string, double>> stats;
  };

  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            std::ostringstream os;
            os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
               << static_cast<int>(c);
            out += os.str();
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::string name_;
  std::vector<Record> records_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace xplain

#endif  // XPLAIN_BENCH_BENCH_UTIL_H_
