#ifndef XPLAIN_BENCH_BENCH_UTIL_H_
#define XPLAIN_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/stopwatch.h"

namespace xplain {
namespace bench {

template <typename T>
T Unwrap(Result<T> result, const char* what = "") {
  if (!result.ok()) {
    std::cerr << "bench error " << what << ": " << result.status().ToString()
              << std::endl;
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

inline void PrintHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Prints one row of a fixed-width table.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::cout << std::left << std::setw(width) << cell;
  }
  std::cout << "\n";
}

inline std::string Fmt(double v, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// Machine-readable companion to the printed tables: collects one record
/// per measured configuration and writes `BENCH_<name>.json` into the
/// working directory. One object per bench binary:
///
///   {"bench": "<name>",
///    "records": [
///      {"workload": "<label>", "threads": <N>, "wall_ms": <X.XXX>}, ...]}
///
/// `threads` is the worker count the measured step actually used (1 for
/// the sequential paths). Construct one reporter at the top of main();
/// the destructor writes the file, or call Write() explicitly to flush
/// early (a second Write is a no-op).
///
/// Thread-safety: externally synchronized -- benches record from main().
class JsonReporter {
 public:
  explicit JsonReporter(std::string name) : name_(std::move(name)) {}
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;
  ~JsonReporter() { Write(); }

  void Add(const std::string& workload, int threads, double wall_ms) {
    records_.push_back(Record{workload, threads, wall_ms});
  }

  void Write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench error: cannot write " << path << std::endl;
      return;
    }
    out << "{\n  \"bench\": \"" << Escape(name_) << "\",\n  \"records\": [";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << (i == 0 ? "" : ",") << "\n    {\"workload\": \""
          << Escape(r.workload) << "\", \"threads\": " << r.threads
          << ", \"wall_ms\": " << Fmt(r.wall_ms) << "}";
    }
    out << "\n  ]\n}\n";
    std::cout << "wrote " << path << " (" << records_.size() << " records)\n";
  }

 private:
  struct Record {
    std::string workload;
    int threads;
    double wall_ms;
  };

  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            std::ostringstream os;
            os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
               << static_cast<int>(c);
            out += os.str();
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::string name_;
  std::vector<Record> records_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace xplain

#endif  // XPLAIN_BENCH_BENCH_UTIL_H_
