// Ablation: the two implementations of Rule (ii) inside program P --
//  (a) support scan over the materialized U(D) (default: exact on every
//      schema, O(|U| * k) per application), vs
//  (b) pairwise semijoin passes over the FK edges (classic full reducer,
//      exact on acyclic FK graphs, O(sum |R_i|) hash passes per edge).
// Both must produce identical fixpoints on the DBLP schema (a tree).

#include "bench/bench_util.h"
#include "core/intervention.h"
#include "datagen/dblp.h"
#include "relational/parser.h"
#include "relational/universal.h"

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  JsonReporter json("ablation_fixpoint");
  PrintHeader("Ablation: Rule (ii) support scan vs pairwise semijoins");
  PrintRow({"scale", "|U|", "scan_ms", "pairwise_ms", "iters"});
  for (double scale : {0.25, 0.5, 1.0, 2.0}) {
    datagen::DblpOptions options;
    options.scale = scale;
    Database db = Unwrap(datagen::GenerateDblp(options));
    UniversalRelation u = Unwrap(UniversalRelation::Build(db));
    InterventionEngine engine(&u);
    DnfPredicate phi = Unwrap(ParseDnfPredicate(
        db, "Author.inst = 'ibm.com' OR Author.inst = 'bell-labs.com'"));

    InterventionOptions scan;
    Stopwatch scan_watch;
    InterventionResult scan_result = Unwrap(engine.Compute(phi, scan));
    double scan_ms = scan_watch.ElapsedMillis();

    InterventionOptions pairwise;
    pairwise.pairwise_reduction = true;
    Stopwatch pair_watch;
    InterventionResult pair_result = Unwrap(engine.Compute(phi, pairwise));
    double pair_ms = pair_watch.ElapsedMillis();

    // The fixpoints must agree (DBLP's FK graph is a tree).
    for (size_t r = 0; r < scan_result.delta.size(); ++r) {
      if (!(scan_result.delta[r] == pair_result.delta[r])) {
        std::cerr << "FIXPOINT MISMATCH in relation " << r << "\n";
        return 1;
      }
    }
    PrintRow({Fmt(scale, 2), std::to_string(u.NumRows()), Fmt(scan_ms, 2),
              Fmt(pair_ms, 2), std::to_string(scan_result.iterations)});
    json.Add("ablation_fixpoint/scale=" + Fmt(scale, 2) + "/scan", 1,
             scan_ms);
    json.Add("ablation_fixpoint/scale=" + Fmt(scale, 2) + "/pairwise", 1,
             pair_ms);
  }
  std::cout << "claim: the support scan amortizes better once U(D) is "
               "materialized anyway (Rule (i) needs it); pairwise passes "
               "rebuild hash tables per edge per iteration.\n";
  return 0;
}
