// Figure 7 (tables) and Figures 8/9 (plots): the contingency tables of
// APGAR outcome vs race and vs marital status, plus the good/poor ratios
// the user questions are built from. The shapes to reproduce: the
// good-to-poor ratio is notably higher for Asian than for Black mothers
// (Fig. 8) and higher for married than unmarried mothers (Fig. 9).

#include "bench/bench_util.h"
#include "datagen/natality.h"
#include "relational/parser.h"
#include "relational/universal.h"

namespace xplain {
namespace {

using bench::Unwrap;

double Count(const Database& db, const UniversalRelation& u,
             const std::string& where) {
  DnfPredicate phi = Unwrap(ParsePredicate(db, where));
  return EvaluateAggregate(u, AggregateSpec::CountStar(), &phi).AsNumeric();
}

}  // namespace
}  // namespace xplain

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  JsonReporter json("fig07_natality_counts");
  datagen::NatalityOptions options;
  options.num_rows = 400000;
  Stopwatch watch;
  Database db = Unwrap(datagen::GenerateNatality(options));
  UniversalRelation u = Unwrap(UniversalRelation::Build(db));
  std::cout << "synthetic natality: " << db.TotalRows() << " rows ("
            << Fmt(watch.ElapsedSeconds()) << " s to generate)\n";
  json.Add("fig07/generate", 1, watch.ElapsedMillis());
  Stopwatch tables_watch;

  PrintHeader("Figure 7a: counts by APGAR group and race");
  PrintRow({"AP", "White", "Black", "AmInd", "Asian"});
  for (const char* ap : {"poor", "good"}) {
    std::vector<std::string> row{ap};
    for (const char* race : {"White", "Black", "AmInd", "Asian"}) {
      row.push_back(Fmt(Count(db, u,
                              std::string("Birth.ap = '") + ap +
                                  "' AND Birth.race = '" + race + "'"),
                        0));
    }
    PrintRow(row);
  }

  PrintHeader("Figure 8: good/poor ratio by race");
  PrintRow({"race", "ratio"});
  double asian_ratio = 0, black_ratio = 0;
  for (const char* race : {"White", "Black", "AmInd", "Asian"}) {
    double good = Count(db, u, std::string("Birth.ap = 'good' AND "
                                           "Birth.race = '") + race + "'");
    double poor = Count(db, u, std::string("Birth.ap = 'poor' AND "
                                           "Birth.race = '") + race + "'");
    double ratio = good / std::max(poor, 1.0);
    if (std::string(race) == "Asian") asian_ratio = ratio;
    if (std::string(race) == "Black") black_ratio = ratio;
    PrintRow({race, Fmt(ratio, 1)});
  }
  std::cout << "shape check (paper Q_Race = 79.3, Q'_Race > 1): Asian/Black "
            << "ratio-of-ratios = " << Fmt(asian_ratio / black_ratio, 2)
            << "\n";

  PrintHeader("Figure 7b: counts by APGAR group and marital status");
  PrintRow({"AP", "married", "unmarried"});
  for (const char* ap : {"poor", "good"}) {
    std::vector<std::string> row{ap};
    for (const char* m : {"married", "unmarried"}) {
      row.push_back(Fmt(Count(db, u,
                              std::string("Birth.ap = '") + ap +
                                  "' AND Birth.marital = '" + m + "'"),
                        0));
    }
    PrintRow(row);
  }

  PrintHeader("Figure 9: good/poor ratio by marital status");
  double married =
      Count(db, u, "Birth.ap = 'good' AND Birth.marital = 'married'") /
      Count(db, u, "Birth.ap = 'poor' AND Birth.marital = 'married'");
  double unmarried =
      Count(db, u, "Birth.ap = 'good' AND Birth.marital = 'unmarried'") /
      Count(db, u, "Birth.ap = 'poor' AND Birth.marital = 'unmarried'");
  PrintRow({"married", Fmt(married, 1)});
  PrintRow({"unmarried", Fmt(unmarried, 1)});
  std::cout << "shape check (paper Q_Marital = 1.46): ratio-of-ratios = "
            << Fmt(married / unmarried, 2) << "\n";
  json.Add("fig07/contingency_tables", 1, tables_watch.ElapsedMillis());
  return 0;
}
