// Figure 12: the benefit of the data-cube optimization. Compares Algorithm
// 1 ("Cube") against the naive enumeration ("No Cube") for Q_Race:
//  (a) input size vs time, with two candidate attributes;
//  (b) number of candidate attributes vs time, on a 1% sample.
// The claim to reproduce is the *dramatic* gap: No Cube grows with
// (#candidate cells x input size) while Cube stays near a single scan.
// Section (c) sweeps the parallel cube over 1/2/4/8 worker threads
// (DESIGN.md §6) and verifies every parallel table M is byte-identical to
// the sequential one.

// Section (d) runs the full engine with ExplainOptions::collect_stats and
// tracing on, emitting per-phase keys (semijoin_ms, cube_build_ms,
// merge_ms, topk_ms, ...) into the BENCH JSON and a Chrome-trace file
// (BENCH_fig12_cube_vs_nocube.trace.json, openable in Perfetto).

#include <cstring>
#include <memory>

#include "bench/bench_util.h"
#include "core/cube_algorithm.h"
#include "core/engine.h"
#include "core/naive.h"
#include "datagen/natality.h"
#include "relational/universal.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace xplain {
namespace {

using bench::Fmt;
using bench::PrintHeader;
using bench::PrintRow;
using bench::Unwrap;

std::vector<ColumnRef> Attrs(const Database& db,
                             const std::vector<std::string>& names) {
  std::vector<ColumnRef> attrs;
  for (const std::string& name : names) {
    attrs.push_back(Unwrap(db.ResolveColumn(name)));
  }
  return attrs;
}

/// Bitwise comparison of two tables M: same canonical row order, same
/// degree columns down to the last bit.
bool BitIdentical(const TableM& a, const TableM& b) {
  if (a.NumRows() != b.NumRows()) return false;
  for (size_t row = 0; row < a.NumRows(); ++row) {
    if (CompareTuples(a.coords[row], b.coords[row]) != 0) return false;
  }
  auto same_bits = [](const std::vector<double>& x,
                      const std::vector<double>& y) {
    return x.size() == y.size() &&
           (x.empty() ||
            std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0);
  };
  return same_bits(a.mu_interv, b.mu_interv) && same_bits(a.mu_aggr, b.mu_aggr);
}

}  // namespace
}  // namespace xplain

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  JsonReporter json("fig12_cube_vs_nocube");

  const std::vector<std::string> kAllAttrs = {
      "Birth.age", "Birth.tobacco", "Birth.prenatal", "Birth.education",
      "Birth.marital"};

  PrintHeader("Figure 12a: data size vs time, Cube vs No Cube (2 attrs)");
  // The paper samples 0.01%..50% of the 4M-row file; same absolute sizes.
  PrintRow({"rows", "cube_s", "nocube_s", "speedup"});
  for (size_t rows : {400, 4000, 40000, 400000, 2000000}) {
    datagen::NatalityOptions options;
    options.num_rows = rows;
    Database db = Unwrap(datagen::GenerateNatality(options));
    UniversalRelation u = Unwrap(UniversalRelation::Build(db));
    UserQuestion question = Unwrap(datagen::MakeNatalityQRace(db));
    std::vector<ColumnRef> attrs =
        Attrs(db, {"Birth.age", "Birth.tobacco"});

    Stopwatch cube_watch;
    TableM cube = Unwrap(ComputeTableM(u, question, attrs));
    double cube_s = cube_watch.ElapsedSeconds();

    Stopwatch naive_watch;
    TableM naive = Unwrap(ComputeTableMNaive(u, question, attrs));
    double naive_s = naive_watch.ElapsedSeconds();

    PrintRow({std::to_string(rows), Fmt(cube_s), Fmt(naive_s),
              Fmt(naive_s / std::max(cube_s, 1e-6), 1) + "x"});
    json.Add("fig12a/rows=" + std::to_string(rows) + "/cube", 1,
             cube_s * 1000.0);
    json.Add("fig12a/rows=" + std::to_string(rows) + "/nocube", 1,
             naive_s * 1000.0);
  }

  PrintHeader(
      "Figure 12b: #attributes vs time, Cube vs No Cube (1% sample)");
  PrintRow({"attrs", "cube_s", "nocube_s", "speedup"});
  datagen::NatalityOptions options;
  options.num_rows = 20000;
  Database db = Unwrap(datagen::GenerateNatality(options));
  UniversalRelation u = Unwrap(UniversalRelation::Build(db));
  UserQuestion question = Unwrap(datagen::MakeNatalityQRace(db));
  for (size_t num_attrs = 1; num_attrs <= kAllAttrs.size(); ++num_attrs) {
    std::vector<std::string> names(kAllAttrs.begin(),
                                   kAllAttrs.begin() + num_attrs);
    std::vector<ColumnRef> attrs = Attrs(db, names);

    Stopwatch cube_watch;
    TableM cube = Unwrap(ComputeTableM(u, question, attrs));
    double cube_s = cube_watch.ElapsedSeconds();

    Stopwatch naive_watch;
    TableM naive = Unwrap(ComputeTableMNaive(u, question, attrs));
    double naive_s = naive_watch.ElapsedSeconds();

    PrintRow({std::to_string(num_attrs), Fmt(cube_s), Fmt(naive_s),
              Fmt(naive_s / std::max(cube_s, 1e-6), 1) + "x"});
    json.Add("fig12b/attrs=" + std::to_string(num_attrs) + "/cube", 1,
             cube_s * 1000.0);
    json.Add("fig12b/attrs=" + std::to_string(num_attrs) + "/nocube", 1,
             naive_s * 1000.0);
  }
  std::cout << "shape check: the No-Cube column grows multiplicatively with "
               "both axes; Cube stays near one scan (paper Figure 12).\n";

  PrintHeader("Figure 12c: parallel cube, worker threads vs time (4 attrs)");
  PrintRow({"threads", "cube_s", "speedup", "identical"});
  datagen::NatalityOptions par_options;
  par_options.num_rows = 2000000;
  Database par_db = Unwrap(datagen::GenerateNatality(par_options));
  UniversalRelation par_u = Unwrap(UniversalRelation::Build(par_db));
  UserQuestion par_question = Unwrap(datagen::MakeNatalityQRace(par_db));
  std::vector<ColumnRef> par_attrs =
      Attrs(par_db, {"Birth.age", "Birth.tobacco", "Birth.prenatal",
                     "Birth.education"});
  TableM sequential;
  double sequential_s = 1.0;
  for (int threads : {1, 2, 4, 8}) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    TableMOptions mopts;
    mopts.cube.pool = pool.get();
    Stopwatch watch;
    TableM table = Unwrap(ComputeTableM(par_u, par_question, par_attrs, mopts));
    double seconds = watch.ElapsedSeconds();
    bool identical = true;
    if (threads == 1) {
      sequential = std::move(table);
      sequential_s = seconds;
    } else {
      identical = BitIdentical(sequential, table);
      if (!identical) {
        std::cerr << "PARALLEL MISMATCH at " << threads << " threads\n";
        return 1;
      }
    }
    PrintRow({std::to_string(threads), Fmt(seconds),
              Fmt(sequential_s / std::max(seconds, 1e-6), 2) + "x",
              identical ? "yes" : "NO"});
    json.Add("fig12c/cube_parallel", threads, seconds * 1000.0);
  }
  std::cout << "determinism check: every parallel table M is byte-identical "
               "to the sequential one (DESIGN.md §6). Speedup tracks the "
               "machine's core count (hardware_concurrency = "
            << ThreadPool::DefaultNumThreads() << " here).\n";

  PrintHeader("Figure 12d: per-phase stats + Chrome trace (collect_stats)");
  // Reuses the 1%-sample database of section (b). Min/median over warmed
  // repeats keeps the per-phase numbers stable across CI runs.
  ExplainEngine engine = Unwrap(ExplainEngine::Create(&db));
  std::vector<ColumnRef> stat_attrs =
      Attrs(db, {"Birth.age", "Birth.tobacco"});
  ExplainOptions eopts;
  eopts.collect_stats = true;
  BenchTiming timing = MeasureMs(
      [&] {
        ExplainReport r =
            Unwrap(engine.ExplainResolved(question, stat_attrs, eopts));
      },
      /*iterations=*/3, /*warmup=*/1);
  json.AddTiming("fig12d/explain", ThreadPool::DefaultNumThreads(), timing);

  Trace::Clear();
  Trace::Enable();
  ExplainReport traced =
      Unwrap(engine.ExplainResolved(question, stat_attrs, eopts));
  Trace::Disable();
  json.AddStats("fig12d/explain_stats", ThreadPool::DefaultNumThreads(),
                traced.stats.total_ms, traced.stats.ToFlat());
  std::cout << traced.stats.ToString();
  const std::string trace_path = "BENCH_fig12_cube_vs_nocube.trace.json";
  Status trace_status = Trace::WriteChromeJson(trace_path);
  if (!trace_status.ok()) {
    std::cerr << "trace export failed: " << trace_status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << trace_path << " ("
            << Trace::Snapshot().size() << " spans; open in "
            << "https://ui.perfetto.dev or chrome://tracing)\n";
  PrintRow({"explain_ms_min", Fmt(timing.min_ms)});
  PrintRow({"explain_ms_median", Fmt(timing.median_ms)});
  return 0;
}
