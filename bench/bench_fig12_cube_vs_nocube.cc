// Figure 12: the benefit of the data-cube optimization. Compares Algorithm
// 1 ("Cube") against the naive enumeration ("No Cube") for Q_Race:
//  (a) input size vs time, with two candidate attributes;
//  (b) number of candidate attributes vs time, on a 1% sample.
// The claim to reproduce is the *dramatic* gap: No Cube grows with
// (#candidate cells x input size) while Cube stays near a single scan.

#include "bench/bench_util.h"
#include "core/cube_algorithm.h"
#include "core/naive.h"
#include "datagen/natality.h"
#include "relational/universal.h"

namespace xplain {
namespace {

using bench::Fmt;
using bench::PrintHeader;
using bench::PrintRow;
using bench::Unwrap;

std::vector<ColumnRef> Attrs(const Database& db,
                             const std::vector<std::string>& names) {
  std::vector<ColumnRef> attrs;
  for (const std::string& name : names) {
    attrs.push_back(Unwrap(db.ResolveColumn(name)));
  }
  return attrs;
}

}  // namespace
}  // namespace xplain

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  const std::vector<std::string> kAllAttrs = {
      "Birth.age", "Birth.tobacco", "Birth.prenatal", "Birth.education",
      "Birth.marital"};

  PrintHeader("Figure 12a: data size vs time, Cube vs No Cube (2 attrs)");
  // The paper samples 0.01%..50% of the 4M-row file; same absolute sizes.
  PrintRow({"rows", "cube_s", "nocube_s", "speedup"});
  for (size_t rows : {400, 4000, 40000, 400000, 2000000}) {
    datagen::NatalityOptions options;
    options.num_rows = rows;
    Database db = Unwrap(datagen::GenerateNatality(options));
    UniversalRelation u = Unwrap(UniversalRelation::Build(db));
    UserQuestion question = Unwrap(datagen::MakeNatalityQRace(db));
    std::vector<ColumnRef> attrs =
        Attrs(db, {"Birth.age", "Birth.tobacco"});

    Stopwatch cube_watch;
    TableM cube = Unwrap(ComputeTableM(u, question, attrs));
    double cube_s = cube_watch.ElapsedSeconds();

    Stopwatch naive_watch;
    TableM naive = Unwrap(ComputeTableMNaive(u, question, attrs));
    double naive_s = naive_watch.ElapsedSeconds();

    PrintRow({std::to_string(rows), Fmt(cube_s), Fmt(naive_s),
              Fmt(naive_s / std::max(cube_s, 1e-6), 1) + "x"});
  }

  PrintHeader(
      "Figure 12b: #attributes vs time, Cube vs No Cube (1% sample)");
  PrintRow({"attrs", "cube_s", "nocube_s", "speedup"});
  datagen::NatalityOptions options;
  options.num_rows = 20000;
  Database db = Unwrap(datagen::GenerateNatality(options));
  UniversalRelation u = Unwrap(UniversalRelation::Build(db));
  UserQuestion question = Unwrap(datagen::MakeNatalityQRace(db));
  for (size_t num_attrs = 1; num_attrs <= kAllAttrs.size(); ++num_attrs) {
    std::vector<std::string> names(kAllAttrs.begin(),
                                   kAllAttrs.begin() + num_attrs);
    std::vector<ColumnRef> attrs = Attrs(db, names);

    Stopwatch cube_watch;
    TableM cube = Unwrap(ComputeTableM(u, question, attrs));
    double cube_s = cube_watch.ElapsedSeconds();

    Stopwatch naive_watch;
    TableM naive = Unwrap(ComputeTableMNaive(u, question, attrs));
    double naive_s = naive_watch.ElapsedSeconds();

    PrintRow({std::to_string(num_attrs), Fmt(cube_s), Fmt(naive_s),
              Fmt(naive_s / std::max(cube_s, 1e-6), 1) + "x"});
  }
  std::cout << "shape check: the No-Cube column grows multiplicatively with "
               "both axes; Cube stays near one scan (paper Figure 12).\n";
  return 0;
}
