// Cluster scaling: requests/sec through the scatter-gather coordinator
// (DESIGN.md §13) at K = 1, 2, 4 shards, all in-process: the DBLP
// instance is hash-partitioned K ways, each shard served by a real
// xplaind (TcpServer + XplaindService) on an ephemeral port, and the
// coordinator fans the mixed EXPLAIN/TOPK workload out over real TCP.
// Client-observed per-request latency goes into a log2 histogram; each
// record carries p50/p99 microseconds and the speedup over K=1.
//
// Shard caches are left on (the realistic configuration), so the numbers
// are fan-out + merge throughput over warm shards after the unmeasured
// fill pass. Emits BENCH_cluster.json:
//   {"bench": "cluster", "records": [
//     {"workload": "k1", "shards": 1, "requests_per_sec": ...,
//      "p50_us": ..., "p99_us": ..., "speedup_vs_k1": 1.0},
//     {"workload": "k2", ...}, {"workload": "k4", ...}]}

#include <deque>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/coordinator.h"
#include "cluster/partition.h"
#include "cluster/shard_map.h"
#include "datagen/dblp.h"
#include "server/service.h"
#include "server/tcp_client.h"
#include "server/tcp_server.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace {

/// Mixed EXPLAIN/TOPK lines over the DBLP instance, COUNT(*) subqueries so
/// every K is inside the sum-merge envelope regardless of partition key.
std::vector<std::string> MakeRequestLines(int count) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int year = 1990 + (i % 16);
    const bool topk = i % 2 == 1;
    const int top_k = 3 + i % 5;
    std::string line = "{\"id\":" + std::to_string(i + 1) + ",\"op\":\"";
    line += topk ? "TOPK" : "EXPLAIN";
    line +=
        "\",\"question\":{\"subqueries\":["
        "{\"name\":\"q1\",\"agg\":\"count(*)\","
        "\"where\":\"venue = 'SIGMOD' AND year >= " +
        std::to_string(year) +
        "\"},"
        "{\"name\":\"q2\",\"agg\":\"count(*)\","
        "\"where\":\"venue = 'PODS' AND year >= " +
        std::to_string(year) +
        "\"}],\"expr\":\"q1 / (q2 + 1)\",\"direction\":\"high\"},"
        "\"attrs\":[\"Author.name\",\"Author.inst\"],"
        "\"options\":{\"top_k\":" +
        std::to_string(top_k) + "}}";
    lines.push_back(std::move(line));
  }
  return lines;
}

void ExitOnErrorResponse(const std::string& response) {
  if (response.find("\"ok\":true") == std::string::npos) {
    std::cerr << "bench error: " << response << std::endl;
    std::exit(1);
  }
}

/// One pipelined client loop against the coordinator's TCP port.
void RunClient(int port, const std::vector<std::string>& lines,
               size_t pipeline, xplain::Histogram* latency_us) {
  using xplain::server::TcpClient;
  TcpClient client = xplain::bench::Unwrap(
      TcpClient::Connect("127.0.0.1", port), "connect");
  std::deque<int64_t> sent_us;
  size_t next = 0;
  size_t done = 0;
  while (done < lines.size()) {
    while (next < lines.size() && next - done < pipeline) {
      sent_us.push_back(xplain::Trace::NowMicros());
      const xplain::Status sent = client.Send(lines[next]);
      if (!sent.ok()) {
        std::cerr << "bench error: " << sent.ToString() << std::endl;
        std::exit(1);
      }
      ++next;
    }
    const std::string response =
        xplain::bench::Unwrap(client.ReadResponse(), "read");
    ExitOnErrorResponse(response);
    latency_us->Record(
        static_cast<double>(xplain::Trace::NowMicros() - sent_us.front()));
    sent_us.pop_front();
    ++done;
  }
}

double RunTcpPass(int port, const std::vector<std::vector<std::string>>& slices,
                  size_t pipeline, xplain::Histogram* latency_us) {
  xplain::Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(slices.size());
  for (const std::vector<std::string>& slice : slices) {
    threads.emplace_back([&slice, port, pipeline, latency_us] {
      RunClient(port, slice, pipeline, latency_us);
    });
  }
  for (std::thread& thread : threads) thread.join();
  return watch.ElapsedMillis();
}

/// One fully in-process K-shard cluster: partitioned databases, K xplaind
/// servers on ephemeral ports, one coordinator in front.
struct Cluster {
  std::vector<std::unique_ptr<xplain::server::XplaindService>> services;
  std::vector<std::unique_ptr<xplain::server::TcpServer>> servers;
  std::unique_ptr<xplain::cluster::Coordinator> coordinator;
  std::unique_ptr<xplain::server::TcpServer> front;

  void Stop() {
    front->Stop();
    coordinator->Drain();
    for (auto& server : servers) server->Stop();
    for (auto& service : services) service->Drain();
  }
};

Cluster StartCluster(const xplain::Database& db, size_t k,
                     const std::string& partition_attr) {
  using xplain::bench::Unwrap;
  Cluster cluster;
  auto map = Unwrap(
      xplain::cluster::ShardMap::Create(db, {partition_attr}, k), "map");
  auto shards =
      Unwrap(xplain::cluster::PartitionDatabase(db, map), "partition");

  xplain::cluster::CoordinatorOptions options;
  options.partition_attrs = {partition_attr};
  for (size_t s = 0; s < k; ++s) {
    auto service = Unwrap(xplain::server::XplaindService::Create(
                              std::move(shards[s]),
                              xplain::server::ServiceOptions{}),
                          "service");
    auto server = Unwrap(
        xplain::server::TcpServer::Start(service.get(),
                                         xplain::server::TcpServerOptions{}),
        "server");
    options.shards.push_back({"127.0.0.1", server->port()});
    cluster.services.push_back(std::move(service));
    cluster.servers.push_back(std::move(server));
  }
  cluster.coordinator =
      Unwrap(xplain::cluster::Coordinator::Create(options), "coordinator");
  cluster.front = Unwrap(
      xplain::server::TcpServer::Start(cluster.coordinator.get(),
                                       xplain::server::TcpServerOptions{}),
      "front");
  return cluster;
}

}  // namespace

int main(int argc, char** argv) {
  using xplain::bench::Fmt;
  using xplain::bench::HistogramPercentile;
  using xplain::bench::JsonReporter;
  using xplain::bench::PrintHeader;
  using xplain::bench::PrintRow;
  using xplain::bench::Unwrap;

  int requests = 48;
  double scale = 0.25;
  int clients = 2;
  int pipeline = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) {
      requests = std::stoi(argv[++i]);
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::stod(argv[++i]);
    } else if (arg == "--clients" && i + 1 < argc) {
      clients = std::max(1, std::stoi(argv[++i]));
    } else if (arg == "--pipeline" && i + 1 < argc) {
      pipeline = std::max(1, std::stoi(argv[++i]));
    }
  }

  xplain::datagen::DblpOptions dblp;
  dblp.scale = scale;
  const xplain::Database db =
      Unwrap(xplain::datagen::GenerateDblp(dblp), "dblp");

  const int total = clients * requests;
  const std::vector<std::string> all = MakeRequestLines(total);
  std::vector<std::vector<std::string>> slices;
  slices.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    slices.emplace_back(all.begin() + c * requests,
                        all.begin() + (c + 1) * requests);
  }

  JsonReporter json("cluster");
  PrintHeader("cluster scatter-gather throughput (" +
              std::to_string(clients) + " clients x " +
              std::to_string(requests) + " requests, pipeline depth " +
              std::to_string(pipeline) + ")");
  PrintRow({"pass", "shards", "wall_ms", "requests_per_sec", "p50_us",
            "p99_us", "speedup_vs_k1"});

  double k1_rps = 0.0;
  for (size_t k : {size_t{1}, size_t{2}, size_t{4}}) {
    Cluster cluster = StartCluster(db, k, "Publication.pubid");
    // Unmeasured fill pass (warms the shard caches), then the measured one.
    xplain::Histogram fill_hist;
    RunTcpPass(cluster.front->port(), slices,
               static_cast<size_t>(pipeline), &fill_hist);
    xplain::Histogram hist;
    const double wall_ms = RunTcpPass(cluster.front->port(), slices,
                                      static_cast<size_t>(pipeline), &hist);
    const double rps = 1000.0 * total / wall_ms;
    if (k == 1) k1_rps = rps;
    const double p50 = HistogramPercentile(hist, 50.0);
    const double p99 = HistogramPercentile(hist, 99.0);
    const double speedup = rps / k1_rps;
    const std::string name = "k" + std::to_string(k);
    PrintRow({name, std::to_string(k), Fmt(wall_ms), Fmt(rps, 1),
              Fmt(p50, 0), Fmt(p99, 0), Fmt(speedup, 2)});
    json.AddStats(name, static_cast<int>(k), wall_ms,
                  {{"shards", static_cast<double>(k)},
                   {"clients", static_cast<double>(clients)},
                   {"pipeline", static_cast<double>(pipeline)},
                   {"requests", static_cast<double>(total)},
                   {"requests_per_sec", rps},
                   {"p50_us", p50},
                   {"p99_us", p99},
                   {"speedup_vs_k1", speedup}});
    cluster.Stop();
  }
  return 0;
}
