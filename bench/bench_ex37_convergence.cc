// Example 3.7 / Figure 5: on the two-back-and-forth-key chain, program P
// needs a number of iterations linear in the instance size (so recursion
// cannot be avoided, unlike the Prop. 3.11 schemas). Regenerates the
// iteration counts and wall-clock times as the chain grows, and checks the
// Prop. 3.4 bound (iterations <= n).

#include "bench/bench_util.h"
#include "core/causal_graph.h"
#include "core/intervention.h"
#include "datagen/worstcase.h"
#include "relational/universal.h"

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  JsonReporter json("ex37_convergence");
  PrintHeader("Example 3.7: iterations of program P on the worst-case chain");
  PrintRow({"p", "rows(n)", "iterations", "bound(n)", "time_ms"});
  for (int p : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512}) {
    datagen::WorstCaseInstance wc =
        Unwrap(datagen::GenerateWorstCaseChain(p));
    UniversalRelation u = Unwrap(UniversalRelation::Build(wc.db));
    InterventionEngine engine(&u);
    Stopwatch watch;
    InterventionResult result = Unwrap(engine.Compute(wc.phi));
    double ms = watch.ElapsedMillis();
    PrintRow({std::to_string(p), std::to_string(wc.total_rows),
              std::to_string(result.iterations),
              std::to_string(wc.total_rows), Fmt(ms, 2)});
    json.Add("ex37/fixpoint/p=" + std::to_string(p), 1, ms);
    if (result.iterations > wc.total_rows) {
      std::cerr << "BOUND VIOLATION (Prop 3.4)\n";
      return 1;
    }
  }

  // Contrast: on the DBLP-shaped schema (one back-and-forth key per child),
  // Prop. 3.11 bounds iterations by 2s+2 = 4 regardless of size.
  PrintHeader("Contrast: Prop 3.11 schemas converge in O(1) iterations");
  datagen::WorstCaseInstance wc = Unwrap(datagen::GenerateWorstCaseChain(4));
  SchemaCausalGraph graph(&wc.db);
  std::cout << "worst-case chain: static bound available? "
            << (graph.StaticConvergenceBound().has_value() ? "yes" : "no")
            << " (expected no: R3 has two back-and-forth keys)\n";
  return 0;
}
