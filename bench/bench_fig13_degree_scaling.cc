// Figure 13: time to compute the degrees of ALL candidate explanations
// (table M) with the cube algorithm:
//  (a) input size vs time for Q_Race (2 subqueries) and Q_Marital (4);
//  (b) number of candidate attributes (4..8) vs time on the full dataset.
// Shapes to reproduce: time grows linearly with data size, Q_Marital costs
// about 2x Q_Race (4 cubes vs 2), and time grows sharply with the number
// of attributes (the 2^d lattice).

#include "bench/bench_util.h"
#include "core/cube_algorithm.h"
#include "datagen/natality.h"
#include "relational/universal.h"

namespace xplain {
namespace {

using bench::Fmt;
using bench::PrintHeader;
using bench::PrintRow;
using bench::Unwrap;

std::vector<ColumnRef> Attrs(const Database& db,
                             const std::vector<std::string>& names) {
  std::vector<ColumnRef> attrs;
  for (const std::string& name : names) {
    attrs.push_back(Unwrap(db.ResolveColumn(name)));
  }
  return attrs;
}

double TimeTableM(const UniversalRelation& u, const UserQuestion& question,
                  const std::vector<ColumnRef>& attrs, size_t* cells_out) {
  Stopwatch watch;
  TableM table = Unwrap(ComputeTableM(u, question, attrs));
  if (cells_out != nullptr) *cells_out = table.NumRows();
  return watch.ElapsedSeconds();
}

}  // namespace
}  // namespace xplain

int main() {
  using namespace xplain;         // NOLINT
  using namespace xplain::bench;  // NOLINT

  const std::vector<std::string> kFourAttrs = {
      "Birth.age", "Birth.tobacco", "Birth.prenatal", "Birth.education"};
  const std::vector<std::string> kEightAttrs = {
      "Birth.age",       "Birth.tobacco",  "Birth.prenatal",
      "Birth.education", "Birth.marital",  "Birth.sex",
      "Birth.hypertension", "Birth.diabetes"};

  JsonReporter json("fig13_degree_scaling");

  PrintHeader("Figure 13a: data size vs time to compute all degrees");
  // The paper sweeps 0.01%..100% of the 4M-row natality file; we sweep the
  // same absolute sizes up to the full 4M.
  PrintRow({"rows", "QRace_s", "QMarital_s"});
  for (size_t rows : {4000, 40000, 400000, 2000000, 4000000}) {
    datagen::NatalityOptions options;
    options.num_rows = rows;
    Database db = Unwrap(datagen::GenerateNatality(options));
    UniversalRelation u = Unwrap(UniversalRelation::Build(db));
    UserQuestion q_race = Unwrap(datagen::MakeNatalityQRace(db));
    UserQuestion q_marital = Unwrap(datagen::MakeNatalityQMarital(db));
    std::vector<ColumnRef> attrs = Attrs(db, kFourAttrs);
    double race_s = TimeTableM(u, q_race, attrs, nullptr);
    double marital_s = TimeTableM(u, q_marital, attrs, nullptr);
    PrintRow({std::to_string(rows), Fmt(race_s), Fmt(marital_s)});
    json.Add("fig13a/rows=" + std::to_string(rows) + "/q_race", 1,
             race_s * 1000.0);
    json.Add("fig13a/rows=" + std::to_string(rows) + "/q_marital", 1,
             marital_s * 1000.0);
  }

  PrintHeader("Figure 13b: #attributes vs time (full dataset, log growth)");
  PrintRow({"attrs", "QRace_s", "QMarital_s", "cells"});
  datagen::NatalityOptions options;
  options.num_rows = 400000;
  Database db = Unwrap(datagen::GenerateNatality(options));
  UniversalRelation u = Unwrap(UniversalRelation::Build(db));
  UserQuestion q_race = Unwrap(datagen::MakeNatalityQRace(db));
  UserQuestion q_marital = Unwrap(datagen::MakeNatalityQMarital(db));
  for (size_t num_attrs = 4; num_attrs <= kEightAttrs.size(); ++num_attrs) {
    std::vector<std::string> names(kEightAttrs.begin(),
                                   kEightAttrs.begin() + num_attrs);
    std::vector<ColumnRef> attrs = Attrs(db, names);
    size_t cells = 0;
    double race_s = TimeTableM(u, q_race, attrs, &cells);
    double marital_s = TimeTableM(u, q_marital, attrs, nullptr);
    PrintRow({std::to_string(num_attrs), Fmt(race_s), Fmt(marital_s),
              std::to_string(cells)});
    json.Add("fig13b/attrs=" + std::to_string(num_attrs) + "/q_race", 1,
             race_s * 1000.0);
    json.Add("fig13b/attrs=" + std::to_string(num_attrs) + "/q_marital", 1,
             marital_s * 1000.0);
  }
  std::cout << "shape check: Q_Marital ~ 2x Q_Race (4 cubes vs 2); time "
               "rises steeply with #attributes (paper Figure 13).\n";
  return 0;
}
