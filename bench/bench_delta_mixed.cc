// Mixed read/write serving: the cost of one tuple delta through xplaind,
// incremental maintenance vs the legacy full rebuild (DESIGN.md §10).
//
// Two identically warmed services over the same natality instance each
// apply the same 1% delta of race='White' Birth rows. The incremental
// service plans under a reader lock, patches the cube workspace, and
// re-keys the cache entries the delta did not touch (the Asian-only
// Q_Race family survives; the Q_Marital family is targeted-invalidated).
// The legacy service copies the database, rebuilds the engine, and wipes
// the cache under the writer lock.
//
// Emits BENCH_delta.json:
//   {"bench": "delta", "records": [
//     {"workload": "incremental", ..., "incremental_delta_us": ...,
//      "post_delta_cache_hits": ..., "targeted_invalidations": ...,
//      "rekeyed": ..., "full_invalidations": 0},
//     {"workload": "rebuild", ..., "rebuild_delta_us": ...,
//      "post_delta_cache_hits": 0, "full_invalidations": ...},
//     {"workload": "summary", ..., "speedup": ...}]}

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/natality.h"
#include "relational/database.h"
#include "relational/parser.h"
#include "server/service.h"
#include "util/stopwatch.h"

namespace {

using xplain::Database;
using xplain::DeltaSet;
using xplain::Stopwatch;
using xplain::bench::Fmt;
using xplain::bench::JsonReporter;
using xplain::bench::PrintHeader;
using xplain::bench::PrintRow;
using xplain::bench::Unwrap;
using xplain::server::ServiceOptions;
using xplain::server::XplaindService;

/// TOPK form of the paper's Q_Race, Asian-only on both sides: a delta
/// over White rows never touches its read set, so its cache entry must
/// survive the version bump. `top_k` varies to make distinct entries.
std::string QRaceLine(int id, int top_k) {
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"TOPK\",\"question\":{\"subqueries\":["
         "{\"name\":\"q1\",\"agg\":\"count(*)\",\"where\":\"Birth.ap = "
         "'good' AND Birth.race = 'Asian'\"},"
         "{\"name\":\"q2\",\"agg\":\"count(*)\",\"where\":\"Birth.ap = "
         "'poor' AND Birth.race = 'Asian'\"}],"
         "\"expr\":\"q1 / q2\",\"direction\":\"high\"},"
         "\"attrs\":[\"marital\",\"tobacco\",\"education\"],"
         "\"options\":{\"top_k\":" + std::to_string(top_k) + "}}";
}

/// TOPK form of Q_Marital: every Birth row is married or unmarried, so
/// the White-rows delta touches its read set and drops its entry.
std::string QMaritalLine(int id, int top_k) {
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"TOPK\",\"question\":{\"subqueries\":["
         "{\"name\":\"q1\",\"agg\":\"count(*)\",\"where\":\"Birth.ap = "
         "'good' AND Birth.marital = 'married'\"},"
         "{\"name\":\"q2\",\"agg\":\"count(*)\",\"where\":\"Birth.ap = "
         "'poor' AND Birth.marital = 'married'\"},"
         "{\"name\":\"q3\",\"agg\":\"count(*)\",\"where\":\"Birth.ap = "
         "'good' AND Birth.marital = 'unmarried'\"},"
         "{\"name\":\"q4\",\"agg\":\"count(*)\",\"where\":\"Birth.ap = "
         "'poor' AND Birth.marital = 'unmarried'\"}],"
         "\"expr\":\"(q1 / q2) / (q3 / q4)\",\"direction\":\"high\"},"
         "\"attrs\":[\"tobacco\",\"education\",\"prenatal\"],"
         "\"options\":{\"top_k\":" + std::to_string(top_k) + "}}";
}

/// The read mix: half survivor candidates (Asian-only), half entries the
/// delta must drop.
std::vector<std::string> MakeMixLines(int per_family) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(per_family) * 2);
  for (int i = 0; i < per_family; ++i) {
    lines.push_back(QRaceLine(100 + i, 3 + i));
    lines.push_back(QMaritalLine(200 + i, 3 + i));
  }
  return lines;
}

void ExitOnErrorResponse(const std::string& response) {
  if (response.find("\"ok\":true") == std::string::npos) {
    std::cerr << "bench error: " << response << std::endl;
    std::exit(1);
  }
}

/// Runs every line synchronously; the second pass over the same lines is
/// the warm pass that populates/hits the cache.
void RunLines(XplaindService* service, const std::vector<std::string>& lines) {
  for (const std::string& line : lines) {
    ExitOnErrorResponse(service->HandleLine(line));
  }
}

/// The first `count` Birth-row positions matching race = 'White' in the
/// service's *current* database shape (positions go stale across deltas,
/// so each service resolves its own).
DeltaSet WhiteDelta(const XplaindService& service, size_t count) {
  const Database& db = service.db();
  const int birth = *db.RelationIndex("Birth");
  const xplain::DnfPredicate white =
      Unwrap(xplain::ParseDnfPredicate(db, "race = 'White'"), "predicate");
  DeltaSet delta = db.EmptyDelta();
  size_t taken = 0;
  const size_t rows = db.relation(birth).NumRows();
  for (size_t row = 0; row < rows && taken < count; ++row) {
    if (white.disjuncts()[0].EvalOnRelation(db, birth, row)) {
      delta[static_cast<size_t>(birth)].Set(row);
      ++taken;
    }
  }
  if (taken < count) {
    std::cerr << "bench error: only " << taken << " White rows of " << count
              << " requested" << std::endl;
    std::exit(1);
  }
  return delta;
}

struct DeltaRun {
  double delta_us = 0.0;
  double post_delta_cache_hits = 0.0;
  XplaindService::Stats stats;
};

/// Warms the mix, applies one `delta_rows`-row delta, replays the mix, and
/// reports the delta wall time plus how many replayed requests were still
/// cache hits afterwards.
DeltaRun RunService(Database db, bool incremental, size_t delta_rows,
                    const std::vector<std::string>& lines) {
  ServiceOptions options;
  options.incremental_deltas = incremental;
  auto service =
      Unwrap(XplaindService::Create(std::move(db), options), "service");

  RunLines(service.get(), lines);  // cold: populate
  RunLines(service.get(), lines);  // warm: all hits
  const int64_t hits_before_delta = service->GetStats().cache_hits;

  const DeltaSet delta = WhiteDelta(*service, delta_rows);
  Stopwatch watch;
  const xplain::Status applied = service->ApplyDelta(delta);
  const double delta_us = watch.ElapsedMillis() * 1000.0;
  if (!applied.ok()) {
    std::cerr << "bench error: " << applied.ToString() << std::endl;
    std::exit(1);
  }

  RunLines(service.get(), lines);  // post-delta: survivors hit, rest recompute
  DeltaRun run;
  run.delta_us = delta_us;
  run.stats = service->GetStats();
  run.post_delta_cache_hits =
      static_cast<double>(run.stats.cache_hits - hits_before_delta);
  service->Drain();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  size_t rows = 400000;
  double delta_pct = 1.0;
  int per_family = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rows" && i + 1 < argc) {
      rows = static_cast<size_t>(std::stoll(argv[++i]));
    } else if (arg == "--delta-pct" && i + 1 < argc) {
      delta_pct = std::stod(argv[++i]);
    } else if (arg == "--queries" && i + 1 < argc) {
      per_family = std::max(1, std::stoi(argv[++i]));
    }
  }
  const size_t delta_rows = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(rows) * delta_pct / 100.0));

  xplain::datagen::NatalityOptions natality;
  natality.num_rows = rows;
  natality.seed = 2010;
  const Database base =
      Unwrap(xplain::datagen::GenerateNatality(natality), "natality");
  const std::vector<std::string> lines = MakeMixLines(per_family);

  PrintHeader("xplaind mixed read/write (" + std::to_string(rows) +
              " natality rows, " + std::to_string(delta_rows) +
              "-row delta, " + std::to_string(lines.size()) +
              " warm entries)");
  PrintRow({"path", "delta_ms", "post_hits", "rekeyed", "targeted", "full"});

  const DeltaRun incremental =
      RunService(base, /*incremental=*/true, delta_rows, lines);
  PrintRow({"incremental", Fmt(incremental.delta_us / 1000.0),
            Fmt(incremental.post_delta_cache_hits, 0),
            Fmt(static_cast<double>(incremental.stats.cache.rekeyed), 0),
            Fmt(static_cast<double>(
                    incremental.stats.cache.targeted_invalidations), 0),
            Fmt(static_cast<double>(
                    incremental.stats.cache.full_invalidations), 0)});

  const DeltaRun rebuild =
      RunService(base, /*incremental=*/false, delta_rows, lines);
  PrintRow({"rebuild", Fmt(rebuild.delta_us / 1000.0),
            Fmt(rebuild.post_delta_cache_hits, 0),
            Fmt(static_cast<double>(rebuild.stats.cache.rekeyed), 0),
            Fmt(static_cast<double>(
                    rebuild.stats.cache.targeted_invalidations), 0),
            Fmt(static_cast<double>(
                    rebuild.stats.cache.full_invalidations), 0)});

  const double speedup = rebuild.delta_us / incremental.delta_us;
  PrintRow({"speedup", Fmt(speedup, 2) + "x"});

  JsonReporter json("delta");
  json.AddStats(
      "incremental", 1, incremental.delta_us / 1000.0,
      {{"rows", static_cast<double>(rows)},
       {"delta_rows", static_cast<double>(delta_rows)},
       {"incremental_delta_us", incremental.delta_us},
       {"post_delta_cache_hits", incremental.post_delta_cache_hits},
       {"rekeyed", static_cast<double>(incremental.stats.cache.rekeyed)},
       {"targeted_invalidations",
        static_cast<double>(incremental.stats.cache.targeted_invalidations)},
       {"full_invalidations",
        static_cast<double>(incremental.stats.cache.full_invalidations)}});
  json.AddStats(
      "rebuild", 1, rebuild.delta_us / 1000.0,
      {{"rows", static_cast<double>(rows)},
       {"delta_rows", static_cast<double>(delta_rows)},
       {"rebuild_delta_us", rebuild.delta_us},
       {"post_delta_cache_hits", rebuild.post_delta_cache_hits},
       {"full_invalidations",
        static_cast<double>(rebuild.stats.cache.full_invalidations)}});
  json.AddStats("summary", 1,
                (incremental.delta_us + rebuild.delta_us) / 1000.0,
                {{"incremental_delta_us", incremental.delta_us},
                 {"rebuild_delta_us", rebuild.delta_us},
                 {"speedup", speedup}});
  json.Write();

  // The whole point of the incremental path: survivors keep serving from
  // the cache, and nothing forced a full wipe.
  if (incremental.post_delta_cache_hits <= 0 ||
      incremental.stats.cache.full_invalidations != 0 ||
      incremental.stats.cache.targeted_invalidations <= 0) {
    std::cerr << "bench error: incremental path lost its cache (hits="
              << incremental.post_delta_cache_hits << ", full="
              << incremental.stats.cache.full_invalidations << ", targeted="
              << incremental.stats.cache.targeted_invalidations << ")"
              << std::endl;
    return 1;
  }
  return 0;
}
