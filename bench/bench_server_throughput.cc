// Serving-layer throughput: requests/sec through the full xplaind stack
// (protocol parse, admission, engine execution, response serialization).
//
// Two transports are measured:
//   - loopback: SubmitLine futures in-process, cold (every request
//     computed) vs warm (every request answered from the cache) — the
//     historical records, unchanged keys.
//   - tcp: a real TcpServer with its epoll reactors, driven by N client
//     threads each pipelining D requests per connection. Per-request
//     client-side latency goes into a log2 histogram; the records carry
//     p50/p99 microseconds and the warm multi-connection speedup over a
//     single non-pipelined connection.
//
// Emits BENCH_server.json:
//   {"bench": "server", "records": [
//     {"workload": "cold", ...}, {"workload": "warm", ...},
//     {"workload": "cold_multi", "clients": C, "pipeline": D,
//      "requests_per_sec": ..., "cold_p50_us": ..., "cold_p99_us": ...},
//     {"workload": "warm_single_tcp", ...},
//     {"workload": "warm_multi", ..., "warm_p50_us": ...,
//      "warm_p99_us": ..., "warm_speedup_vs_single": ...},
//     {"workload": "warm_observed", ..., "trace_sample_period": 100,
//      "overhead_pct_vs_warm_multi": ...}]}
//
// warm_observed repeats warm_multi with the request-scoped observability
// plane fully enabled (flight recorder, 1% trace sampling, armed
// slow-query threshold; DESIGN.md §12) and reports the warm-path overhead
// percentage — the budget is <= 5%.

#include <algorithm>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/dblp.h"
#include "server/service.h"
#include "server/tcp_client.h"
#include "server/tcp_server.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace {

/// Distinct request lines over the DBLP instance: SIGMOD-vs-PODS ratio
/// questions with varying year windows, ops, and top_k.
std::vector<std::string> MakeRequestLines(int count) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int year = 1990 + (i % 16);
    const bool topk = i % 2 == 1;
    const int top_k = 3 + i % 5;
    std::string line = "{\"id\":" + std::to_string(i + 1) + ",\"op\":\"";
    line += topk ? "TOPK" : "EXPLAIN";
    line +=
        "\",\"question\":{\"subqueries\":["
        "{\"name\":\"q1\",\"agg\":\"count(distinct Publication.pubid)\","
        "\"where\":\"venue = 'SIGMOD' AND year >= " +
        std::to_string(year) +
        "\"},"
        "{\"name\":\"q2\",\"agg\":\"count(distinct Publication.pubid)\","
        "\"where\":\"venue = 'PODS' AND year >= " +
        std::to_string(year) +
        "\"}],\"expr\":\"q1 / (q2 + 1)\",\"direction\":\"high\"},"
        "\"attrs\":[\"Author.name\",\"Author.inst\"],"
        "\"options\":{\"top_k\":" +
        std::to_string(top_k) + "}}";
    lines.push_back(std::move(line));
  }
  return lines;
}

/// Like MakeRequestLines but with a wide year sweep so canonical request
/// keys stay distinct across clients*requests lines — the TCP cold pass
/// must not degenerate into cache hits.
std::vector<std::string> MakeDistinctRequestLines(int count) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int year = 1800 + (i % 500);
    const bool topk = i % 2 == 1;
    const int top_k = 3 + (i / 500) % 5;
    std::string line = "{\"id\":" + std::to_string(i + 1) + ",\"op\":\"";
    line += topk ? "TOPK" : "EXPLAIN";
    line +=
        "\",\"question\":{\"subqueries\":["
        "{\"name\":\"q1\",\"agg\":\"count(distinct Publication.pubid)\","
        "\"where\":\"venue = 'SIGMOD' AND year >= " +
        std::to_string(year) +
        "\"},"
        "{\"name\":\"q2\",\"agg\":\"count(distinct Publication.pubid)\","
        "\"where\":\"venue = 'PODS' AND year >= " +
        std::to_string(year) +
        "\"}],\"expr\":\"q1 / (q2 + 1)\",\"direction\":\"high\"},"
        "\"attrs\":[\"Author.name\",\"Author.inst\"],"
        "\"options\":{\"top_k\":" +
        std::to_string(top_k) + "}}";
    lines.push_back(std::move(line));
  }
  return lines;
}

void ExitOnErrorResponse(const std::string& response) {
  if (response.find("\"ok\":true") == std::string::npos) {
    std::cerr << "bench error: " << response << std::endl;
    std::exit(1);
  }
}

/// Submits every line asynchronously, waits for all responses, and returns
/// elapsed milliseconds. Exits on any error response (a throughput number
/// over failed requests would be meaningless).
double RunPass(xplain::server::XplaindService* service,
               const std::vector<std::string>& lines) {
  xplain::Stopwatch watch;
  std::vector<std::future<std::string>> futures;
  futures.reserve(lines.size());
  for (const std::string& line : lines) {
    futures.push_back(service->SubmitLine(line));
  }
  for (std::future<std::string>& f : futures) {
    ExitOnErrorResponse(f.get());
  }
  return watch.ElapsedMillis();
}

/// One client thread: a windowed pipelined request loop over one TCP
/// connection, recording client-observed per-request latency (send to
/// response receipt, including pipeline queueing) into `latency_us`.
void RunClient(int port, const std::vector<std::string>& lines,
               size_t pipeline, xplain::Histogram* latency_us) {
  using xplain::server::TcpClient;
  TcpClient client = xplain::bench::Unwrap(
      TcpClient::Connect("127.0.0.1", port), "connect");
  std::deque<int64_t> sent_us;
  size_t next = 0;
  size_t done = 0;
  while (done < lines.size()) {
    while (next < lines.size() && next - done < pipeline) {
      sent_us.push_back(xplain::Trace::NowMicros());
      const xplain::Status sent = client.Send(lines[next]);
      if (!sent.ok()) {
        std::cerr << "bench error: " << sent.ToString() << std::endl;
        std::exit(1);
      }
      ++next;
    }
    const std::string response =
        xplain::bench::Unwrap(client.ReadResponse(), "read");
    ExitOnErrorResponse(response);
    latency_us->Record(
        static_cast<double>(xplain::Trace::NowMicros() - sent_us.front()));
    sent_us.pop_front();
    ++done;
  }
}

/// Runs `clients` concurrent pipelined connections, one slice of `lines`
/// each, and returns wall milliseconds for the whole fleet.
double RunTcpPass(int port, const std::vector<std::vector<std::string>>& slices,
                  size_t pipeline, xplain::Histogram* latency_us) {
  xplain::Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(slices.size());
  for (const std::vector<std::string>& slice : slices) {
    threads.emplace_back(
        [&slice, port, pipeline, latency_us] {
          RunClient(port, slice, pipeline, latency_us);
        });
  }
  for (std::thread& thread : threads) thread.join();
  return watch.ElapsedMillis();
}

}  // namespace

int main(int argc, char** argv) {
  using xplain::bench::Fmt;
  using xplain::bench::HistogramPercentile;
  using xplain::bench::JsonReporter;
  using xplain::bench::PrintHeader;
  using xplain::bench::PrintRow;
  using xplain::bench::Unwrap;

  const int hw = xplain::ThreadPool::DefaultNumThreads();
  int requests = 64;
  double scale = 0.25;
  int clients = std::min(8, std::max(2, hw));
  int pipeline = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) {
      requests = std::stoi(argv[++i]);
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::stod(argv[++i]);
    } else if (arg == "--clients" && i + 1 < argc) {
      clients = std::max(1, std::stoi(argv[++i]));
    } else if (arg == "--pipeline" && i + 1 < argc) {
      pipeline = std::max(1, std::stoi(argv[++i]));
    }
  }

  JsonReporter json("server");

  // ---- loopback: the historical cold/warm records -------------------------
  {
    xplain::datagen::DblpOptions dblp;
    dblp.scale = scale;
    xplain::Database db =
        Unwrap(xplain::datagen::GenerateDblp(dblp), "dblp");

    xplain::server::ServiceOptions options;
    options.max_queue_depth = static_cast<size_t>(requests);
    auto service = Unwrap(
        xplain::server::XplaindService::Create(std::move(db), options),
        "service");

    const std::vector<std::string> lines = MakeRequestLines(requests);

    PrintHeader("xplaind throughput (loopback, " + std::to_string(requests) +
                " requests, " + std::to_string(hw) + " workers)");
    PrintRow({"pass", "wall_ms", "requests_per_sec"});

    // Cold: empty cache, every request runs the engine.
    const double cold_ms = RunPass(service.get(), lines);
    const double cold_rps = 1000.0 * requests / cold_ms;
    PrintRow({"cold", Fmt(cold_ms), Fmt(cold_rps, 1)});
    json.AddStats("cold", hw, cold_ms,
                  {{"requests", static_cast<double>(requests)},
                   {"requests_per_sec", cold_rps}});

    // Warm: identical lines, all served from the explanation cache.
    const double warm_ms = RunPass(service.get(), lines);
    const double warm_rps = 1000.0 * requests / warm_ms;
    PrintRow({"warm", Fmt(warm_ms), Fmt(warm_rps, 1)});
    json.AddStats("warm", hw, warm_ms,
                  {{"requests", static_cast<double>(requests)},
                   {"requests_per_sec", warm_rps}});

    const auto stats = service->GetStats();
    if (stats.cache.hits < requests) {
      std::cerr << "bench error: warm pass expected " << requests
                << " cache hits, saw " << stats.cache.hits << std::endl;
      return 1;
    }
    service->Drain();
  }

  // ---- tcp: multi-client pipelined connections over the reactors ----------
  // A fresh database and service so loopback passes cannot pre-warm the
  // cache under the TCP cold numbers.
  xplain::datagen::DblpOptions dblp;
  dblp.scale = scale;
  xplain::Database db = Unwrap(xplain::datagen::GenerateDblp(dblp), "dblp");

  const int total = clients * requests;
  xplain::server::ServiceOptions options;
  options.max_queue_depth = static_cast<size_t>(total) * 2;
  auto service = Unwrap(
      xplain::server::XplaindService::Create(std::move(db), options),
      "service");
  auto server = Unwrap(
      xplain::server::TcpServer::Start(service.get(),
                                       xplain::server::TcpServerOptions{}),
      "server");

  const std::vector<std::string> all = MakeDistinctRequestLines(total);
  std::vector<std::vector<std::string>> slices;
  slices.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    slices.emplace_back(all.begin() + c * requests,
                        all.begin() + (c + 1) * requests);
  }

  PrintHeader("xplaind throughput (tcp, " + std::to_string(clients) +
              " clients x " + std::to_string(requests) +
              " requests, pipeline depth " + std::to_string(pipeline) +
              ", " + std::to_string(server->num_reactors()) + " reactors)");
  PrintRow({"pass", "wall_ms", "requests_per_sec", "p50_us", "p99_us"});

  // Cold multi: distinct requests, every one runs the engine.
  xplain::Histogram cold_hist;
  const double cold_multi_ms = RunTcpPass(
      server->port(), slices, static_cast<size_t>(pipeline), &cold_hist);
  const double cold_multi_rps = 1000.0 * total / cold_multi_ms;
  const double cold_p50 = HistogramPercentile(cold_hist, 50.0);
  const double cold_p99 = HistogramPercentile(cold_hist, 99.0);
  PrintRow({"cold_multi", Fmt(cold_multi_ms), Fmt(cold_multi_rps, 1),
            Fmt(cold_p50, 0), Fmt(cold_p99, 0)});
  json.AddStats("cold_multi", clients, cold_multi_ms,
                {{"clients", static_cast<double>(clients)},
                 {"pipeline", static_cast<double>(pipeline)},
                 {"requests", static_cast<double>(total)},
                 {"requests_per_sec", cold_multi_rps},
                 {"cold_p50_us", cold_p50},
                 {"cold_p99_us", cold_p99}});

  // Warm single: one connection, no pipelining — the pre-reactor
  // configuration and the denominator of the scaling claim.
  xplain::Histogram single_hist;
  const std::vector<std::vector<std::string>> single_slice = {slices[0]};
  const double warm_single_ms =
      RunTcpPass(server->port(), single_slice, 1, &single_hist);
  const double warm_single_rps = 1000.0 * requests / warm_single_ms;
  PrintRow({"warm_single_tcp", Fmt(warm_single_ms), Fmt(warm_single_rps, 1),
            Fmt(HistogramPercentile(single_hist, 50.0), 0),
            Fmt(HistogramPercentile(single_hist, 99.0), 0)});
  json.AddStats("warm_single_tcp", 1, warm_single_ms,
                {{"requests", static_cast<double>(requests)},
                 {"requests_per_sec", warm_single_rps}});

  // Warm multi: every request a cache hit — transport-bound scaling.
  xplain::Histogram warm_hist;
  const double warm_multi_ms = RunTcpPass(
      server->port(), slices, static_cast<size_t>(pipeline), &warm_hist);
  const double warm_multi_rps = 1000.0 * total / warm_multi_ms;
  const double warm_p50 = HistogramPercentile(warm_hist, 50.0);
  const double warm_p99 = HistogramPercentile(warm_hist, 99.0);
  const double speedup = warm_multi_rps / warm_single_rps;
  PrintRow({"warm_multi", Fmt(warm_multi_ms), Fmt(warm_multi_rps, 1),
            Fmt(warm_p50, 0), Fmt(warm_p99, 0)});
  json.AddStats("warm_multi", clients, warm_multi_ms,
                {{"clients", static_cast<double>(clients)},
                 {"pipeline", static_cast<double>(pipeline)},
                 {"requests", static_cast<double>(total)},
                 {"requests_per_sec", warm_multi_rps},
                 {"warm_p50_us", warm_p50},
                 {"warm_p99_us", warm_p99},
                 {"warm_speedup_vs_single", speedup}});

  const auto stats = service->GetStats();
  if (stats.cache.hits < total) {
    std::cerr << "bench error: warm tcp passes expected " << total
              << " cache hits, saw " << stats.cache.hits << std::endl;
    return 1;
  }
  server->Stop();
  service->Drain();

  // ---- observability overhead: recorder on + 1% trace sampling ------------
  // A fresh service with the observability plane fully enabled (flight
  // recorder is always on; sampling one request in 100; slow-query
  // threshold armed) against the same warm workload, to bound the
  // warm-path cost of DESIGN.md §12 relative to warm_multi above.
  {
    xplain::datagen::DblpOptions obs_dblp;
    obs_dblp.scale = scale;
    xplain::Database obs_db =
        Unwrap(xplain::datagen::GenerateDblp(obs_dblp), "dblp");
    xplain::server::ServiceOptions obs_options;
    obs_options.max_queue_depth = static_cast<size_t>(total) * 2;
    obs_options.trace_sample_period = 100;
    obs_options.slow_query_us = 1000000;  // high: log nothing, arm the check
    auto obs_service = Unwrap(xplain::server::XplaindService::Create(
                                  std::move(obs_db), obs_options),
                              "service");
    auto obs_server = Unwrap(
        xplain::server::TcpServer::Start(obs_service.get(),
                                         xplain::server::TcpServerOptions{}),
        "server");

    // Unmeasured cold pass to fill the cache, then the measured warm pass.
    xplain::Histogram obs_fill_hist;
    RunTcpPass(obs_server->port(), slices, static_cast<size_t>(pipeline),
               &obs_fill_hist);
    xplain::Histogram obs_hist;
    const double obs_ms = RunTcpPass(obs_server->port(), slices,
                                     static_cast<size_t>(pipeline), &obs_hist);
    const double obs_rps = 1000.0 * total / obs_ms;
    const double obs_p50 = HistogramPercentile(obs_hist, 50.0);
    const double obs_p99 = HistogramPercentile(obs_hist, 99.0);
    const double overhead_pct = (obs_ms / warm_multi_ms - 1.0) * 100.0;
    PrintRow({"warm_observed", Fmt(obs_ms), Fmt(obs_rps, 1), Fmt(obs_p50, 0),
              Fmt(obs_p99, 0)});
    json.AddStats("warm_observed", clients, obs_ms,
                  {{"clients", static_cast<double>(clients)},
                   {"pipeline", static_cast<double>(pipeline)},
                   {"requests", static_cast<double>(total)},
                   {"requests_per_sec", obs_rps},
                   {"warm_p50_us", obs_p50},
                   {"warm_p99_us", obs_p99},
                   {"trace_sample_period", 100.0},
                   {"overhead_pct_vs_warm_multi", overhead_pct}});

    const auto obs_stats = obs_service->GetStats();
    if (obs_stats.cache.hits < total) {
      std::cerr << "bench error: observed warm pass expected " << total
                << " cache hits, saw " << obs_stats.cache.hits << std::endl;
      return 1;
    }
    obs_server->Stop();
    obs_service->Drain();
  }
  return 0;
}
