// Serving-layer throughput: requests/sec through the full xplaind stack
// (protocol parse, admission, engine execution, response serialization)
// over the in-process loopback path, cold (every request computed) vs warm
// (every request answered from the explanation cache).
//
// Emits BENCH_server.json:
//   {"bench": "server", "records": [
//     {"workload": "cold", "threads": W, "wall_ms": ...,
//      "requests": N, "requests_per_sec": ...},
//     {"workload": "warm", ...}]}

#include <future>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/dblp.h"
#include "server/service.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

/// Distinct request lines over the DBLP instance: SIGMOD-vs-PODS ratio
/// questions with varying year windows, ops, and top_k.
std::vector<std::string> MakeRequestLines(int count) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int year = 1990 + (i % 16);
    const bool topk = i % 2 == 1;
    const int top_k = 3 + i % 5;
    std::string line = "{\"id\":" + std::to_string(i + 1) + ",\"op\":\"";
    line += topk ? "TOPK" : "EXPLAIN";
    line +=
        "\",\"question\":{\"subqueries\":["
        "{\"name\":\"q1\",\"agg\":\"count(distinct Publication.pubid)\","
        "\"where\":\"venue = 'SIGMOD' AND year >= " +
        std::to_string(year) +
        "\"},"
        "{\"name\":\"q2\",\"agg\":\"count(distinct Publication.pubid)\","
        "\"where\":\"venue = 'PODS' AND year >= " +
        std::to_string(year) +
        "\"}],\"expr\":\"q1 / (q2 + 1)\",\"direction\":\"high\"},"
        "\"attrs\":[\"Author.name\",\"Author.inst\"],"
        "\"options\":{\"top_k\":" +
        std::to_string(top_k) + "}}";
    lines.push_back(std::move(line));
  }
  return lines;
}

/// Submits every line asynchronously, waits for all responses, and returns
/// elapsed milliseconds. Exits on any error response (a throughput number
/// over failed requests would be meaningless).
double RunPass(xplain::server::XplaindService* service,
               const std::vector<std::string>& lines) {
  xplain::Stopwatch watch;
  std::vector<std::future<std::string>> futures;
  futures.reserve(lines.size());
  for (const std::string& line : lines) {
    futures.push_back(service->SubmitLine(line));
  }
  for (std::future<std::string>& f : futures) {
    const std::string response = f.get();
    if (response.find("\"ok\":true") == std::string::npos) {
      std::cerr << "bench error: " << response << std::endl;
      std::exit(1);
    }
  }
  return watch.ElapsedMillis();
}

}  // namespace

int main(int argc, char** argv) {
  using xplain::bench::Fmt;
  using xplain::bench::JsonReporter;
  using xplain::bench::PrintHeader;
  using xplain::bench::PrintRow;
  using xplain::bench::Unwrap;

  int requests = 64;
  double scale = 0.25;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) {
      requests = std::stoi(argv[++i]);
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::stod(argv[++i]);
    }
  }

  xplain::datagen::DblpOptions dblp;
  dblp.scale = scale;
  xplain::Database db = Unwrap(xplain::datagen::GenerateDblp(dblp), "dblp");

  xplain::server::ServiceOptions options;
  options.max_queue_depth = static_cast<size_t>(requests);
  auto service = Unwrap(
      xplain::server::XplaindService::Create(std::move(db), options),
      "service");
  const int workers = xplain::ThreadPool::DefaultNumThreads();

  const std::vector<std::string> lines = MakeRequestLines(requests);

  JsonReporter json("server");
  PrintHeader("xplaind throughput (loopback, " + std::to_string(requests) +
              " requests, " + std::to_string(workers) + " workers)");
  PrintRow({"pass", "wall_ms", "requests_per_sec"});

  // Cold: empty cache, every request runs the engine.
  const double cold_ms = RunPass(service.get(), lines);
  const double cold_rps = 1000.0 * requests / cold_ms;
  PrintRow({"cold", Fmt(cold_ms), Fmt(cold_rps, 1)});
  json.AddStats("cold", workers, cold_ms,
                {{"requests", static_cast<double>(requests)},
                 {"requests_per_sec", cold_rps}});

  // Warm: identical lines, all served from the explanation cache.
  const double warm_ms = RunPass(service.get(), lines);
  const double warm_rps = 1000.0 * requests / warm_ms;
  PrintRow({"warm", Fmt(warm_ms), Fmt(warm_rps, 1)});
  json.AddStats("warm", workers, warm_ms,
                {{"requests", static_cast<double>(requests)},
                 {"requests_per_sec", warm_rps}});

  const auto stats = service->GetStats();
  if (stats.cache.hits < requests) {
    std::cerr << "bench error: warm pass expected " << requests
              << " cache hits, saw " << stats.cache.hits << std::endl;
    return 1;
  }
  service->Drain();
  return 0;
}
