file(REMOVE_RECURSE
  "CMakeFiles/extended_explanations.dir/extended_explanations.cpp.o"
  "CMakeFiles/extended_explanations.dir/extended_explanations.cpp.o.d"
  "extended_explanations"
  "extended_explanations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_explanations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
