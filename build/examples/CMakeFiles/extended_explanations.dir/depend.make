# Empty dependencies file for extended_explanations.
# This may be replaced when dependencies are built.
