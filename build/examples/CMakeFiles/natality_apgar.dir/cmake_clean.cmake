file(REMOVE_RECURSE
  "CMakeFiles/natality_apgar.dir/natality_apgar.cpp.o"
  "CMakeFiles/natality_apgar.dir/natality_apgar.cpp.o.d"
  "natality_apgar"
  "natality_apgar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natality_apgar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
