# Empty compiler generated dependencies file for natality_apgar.
# This may be replaced when dependencies are built.
