# Empty dependencies file for causal_paths.
# This may be replaced when dependencies are built.
