file(REMOVE_RECURSE
  "CMakeFiles/causal_paths.dir/causal_paths.cpp.o"
  "CMakeFiles/causal_paths.dir/causal_paths.cpp.o.d"
  "causal_paths"
  "causal_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
