file(REMOVE_RECURSE
  "CMakeFiles/dblp_bump.dir/dblp_bump.cpp.o"
  "CMakeFiles/dblp_bump.dir/dblp_bump.cpp.o.d"
  "dblp_bump"
  "dblp_bump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_bump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
