# Empty dependencies file for dblp_bump.
# This may be replaced when dependencies are built.
