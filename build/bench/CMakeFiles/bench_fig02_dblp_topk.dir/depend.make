# Empty dependencies file for bench_fig02_dblp_topk.
# This may be replaced when dependencies are built.
