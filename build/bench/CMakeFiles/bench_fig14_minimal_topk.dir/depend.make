# Empty dependencies file for bench_fig14_minimal_topk.
# This may be replaced when dependencies are built.
