file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_natality_counts.dir/bench_fig07_natality_counts.cc.o"
  "CMakeFiles/bench_fig07_natality_counts.dir/bench_fig07_natality_counts.cc.o.d"
  "bench_fig07_natality_counts"
  "bench_fig07_natality_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_natality_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
