# Empty compiler generated dependencies file for bench_fig07_natality_counts.
# This may be replaced when dependencies are built.
