# Empty dependencies file for bench_fig10_topk_interv.
# This may be replaced when dependencies are built.
