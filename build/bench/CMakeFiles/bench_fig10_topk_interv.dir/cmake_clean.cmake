file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_topk_interv.dir/bench_fig10_topk_interv.cc.o"
  "CMakeFiles/bench_fig10_topk_interv.dir/bench_fig10_topk_interv.cc.o.d"
  "bench_fig10_topk_interv"
  "bench_fig10_topk_interv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_topk_interv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
