# Empty dependencies file for bench_fig12_cube_vs_nocube.
# This may be replaced when dependencies are built.
