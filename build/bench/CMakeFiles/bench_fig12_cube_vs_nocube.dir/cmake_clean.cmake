file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_cube_vs_nocube.dir/bench_fig12_cube_vs_nocube.cc.o"
  "CMakeFiles/bench_fig12_cube_vs_nocube.dir/bench_fig12_cube_vs_nocube.cc.o.d"
  "bench_fig12_cube_vs_nocube"
  "bench_fig12_cube_vs_nocube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cube_vs_nocube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
