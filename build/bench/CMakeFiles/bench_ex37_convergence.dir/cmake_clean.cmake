file(REMOVE_RECURSE
  "CMakeFiles/bench_ex37_convergence.dir/bench_ex37_convergence.cc.o"
  "CMakeFiles/bench_ex37_convergence.dir/bench_ex37_convergence.cc.o.d"
  "bench_ex37_convergence"
  "bench_ex37_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex37_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
