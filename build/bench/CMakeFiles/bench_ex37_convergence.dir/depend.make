# Empty dependencies file for bench_ex37_convergence.
# This may be replaced when dependencies are built.
