# Empty compiler generated dependencies file for bench_ablation_cube.
# This may be replaced when dependencies are built.
