file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cube.dir/bench_ablation_cube.cc.o"
  "CMakeFiles/bench_ablation_cube.dir/bench_ablation_cube.cc.o.d"
  "bench_ablation_cube"
  "bench_ablation_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
