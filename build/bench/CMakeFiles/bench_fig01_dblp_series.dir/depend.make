# Empty dependencies file for bench_fig01_dblp_series.
# This may be replaced when dependencies are built.
