file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_dblp_series.dir/bench_fig01_dblp_series.cc.o"
  "CMakeFiles/bench_fig01_dblp_series.dir/bench_fig01_dblp_series.cc.o.d"
  "bench_fig01_dblp_series"
  "bench_fig01_dblp_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_dblp_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
