file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_degree_scaling.dir/bench_fig13_degree_scaling.cc.o"
  "CMakeFiles/bench_fig13_degree_scaling.dir/bench_fig13_degree_scaling.cc.o.d"
  "bench_fig13_degree_scaling"
  "bench_fig13_degree_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_degree_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
