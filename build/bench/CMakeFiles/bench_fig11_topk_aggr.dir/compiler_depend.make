# Empty compiler generated dependencies file for bench_fig11_topk_aggr.
# This may be replaced when dependencies are built.
