file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_topk_aggr.dir/bench_fig11_topk_aggr.cc.o"
  "CMakeFiles/bench_fig11_topk_aggr.dir/bench_fig11_topk_aggr.cc.o.d"
  "bench_fig11_topk_aggr"
  "bench_fig11_topk_aggr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_topk_aggr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
