file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fixpoint.dir/bench_ablation_fixpoint.cc.o"
  "CMakeFiles/bench_ablation_fixpoint.dir/bench_ablation_fixpoint.cc.o.d"
  "bench_ablation_fixpoint"
  "bench_ablation_fixpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fixpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
