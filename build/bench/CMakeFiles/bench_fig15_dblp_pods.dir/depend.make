# Empty dependencies file for bench_fig15_dblp_pods.
# This may be replaced when dependencies are built.
