file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_dblp_pods.dir/bench_fig15_dblp_pods.cc.o"
  "CMakeFiles/bench_fig15_dblp_pods.dir/bench_fig15_dblp_pods.cc.o.d"
  "bench_fig15_dblp_pods"
  "bench_fig15_dblp_pods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dblp_pods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
