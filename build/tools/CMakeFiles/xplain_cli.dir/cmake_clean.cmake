file(REMOVE_RECURSE
  "CMakeFiles/xplain_cli.dir/xplain_cli.cc.o"
  "CMakeFiles/xplain_cli.dir/xplain_cli.cc.o.d"
  "xplain"
  "xplain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplain_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
