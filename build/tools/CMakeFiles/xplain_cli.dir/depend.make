# Empty dependencies file for xplain_cli.
# This may be replaced when dependencies are built.
