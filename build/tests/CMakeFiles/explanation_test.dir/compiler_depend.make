# Empty compiler generated dependencies file for explanation_test.
# This may be replaced when dependencies are built.
