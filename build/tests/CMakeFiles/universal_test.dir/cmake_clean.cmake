file(REMOVE_RECURSE
  "CMakeFiles/universal_test.dir/universal_test.cc.o"
  "CMakeFiles/universal_test.dir/universal_test.cc.o.d"
  "universal_test"
  "universal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
