file(REMOVE_RECURSE
  "CMakeFiles/cube_algorithm_test.dir/cube_algorithm_test.cc.o"
  "CMakeFiles/cube_algorithm_test.dir/cube_algorithm_test.cc.o.d"
  "cube_algorithm_test"
  "cube_algorithm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
