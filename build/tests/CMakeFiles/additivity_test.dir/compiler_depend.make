# Empty compiler generated dependencies file for additivity_test.
# This may be replaced when dependencies are built.
