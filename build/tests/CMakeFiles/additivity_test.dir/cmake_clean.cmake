file(REMOVE_RECURSE
  "CMakeFiles/additivity_test.dir/additivity_test.cc.o"
  "CMakeFiles/additivity_test.dir/additivity_test.cc.o.d"
  "additivity_test"
  "additivity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/additivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
