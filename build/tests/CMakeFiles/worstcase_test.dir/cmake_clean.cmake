file(REMOVE_RECURSE
  "CMakeFiles/worstcase_test.dir/worstcase_test.cc.o"
  "CMakeFiles/worstcase_test.dir/worstcase_test.cc.o.d"
  "worstcase_test"
  "worstcase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worstcase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
