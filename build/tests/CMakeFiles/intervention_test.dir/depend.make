# Empty dependencies file for intervention_test.
# This may be replaced when dependencies are built.
