# Empty dependencies file for ddl_test.
# This may be replaced when dependencies are built.
