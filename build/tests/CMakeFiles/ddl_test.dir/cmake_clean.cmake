file(REMOVE_RECURSE
  "CMakeFiles/ddl_test.dir/ddl_test.cc.o"
  "CMakeFiles/ddl_test.dir/ddl_test.cc.o.d"
  "ddl_test"
  "ddl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
