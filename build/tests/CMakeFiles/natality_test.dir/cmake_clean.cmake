file(REMOVE_RECURSE
  "CMakeFiles/natality_test.dir/natality_test.cc.o"
  "CMakeFiles/natality_test.dir/natality_test.cc.o.d"
  "natality_test"
  "natality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
