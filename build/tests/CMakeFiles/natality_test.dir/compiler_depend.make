# Empty compiler generated dependencies file for natality_test.
# This may be replaced when dependencies are built.
