file(REMOVE_RECURSE
  "CMakeFiles/degree_test.dir/degree_test.cc.o"
  "CMakeFiles/degree_test.dir/degree_test.cc.o.d"
  "degree_test"
  "degree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
