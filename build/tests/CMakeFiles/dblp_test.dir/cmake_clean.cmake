file(REMOVE_RECURSE
  "CMakeFiles/dblp_test.dir/dblp_test.cc.o"
  "CMakeFiles/dblp_test.dir/dblp_test.cc.o.d"
  "dblp_test"
  "dblp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
