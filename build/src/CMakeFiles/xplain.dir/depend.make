# Empty dependencies file for xplain.
# This may be replaced when dependencies are built.
