file(REMOVE_RECURSE
  "libxplain.a"
)
