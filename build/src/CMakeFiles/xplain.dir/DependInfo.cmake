
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/cli.cc" "src/CMakeFiles/xplain.dir/cli/cli.cc.o" "gcc" "src/CMakeFiles/xplain.dir/cli/cli.cc.o.d"
  "/root/repo/src/core/additivity.cc" "src/CMakeFiles/xplain.dir/core/additivity.cc.o" "gcc" "src/CMakeFiles/xplain.dir/core/additivity.cc.o.d"
  "/root/repo/src/core/candidates.cc" "src/CMakeFiles/xplain.dir/core/candidates.cc.o" "gcc" "src/CMakeFiles/xplain.dir/core/candidates.cc.o.d"
  "/root/repo/src/core/causal_graph.cc" "src/CMakeFiles/xplain.dir/core/causal_graph.cc.o" "gcc" "src/CMakeFiles/xplain.dir/core/causal_graph.cc.o.d"
  "/root/repo/src/core/cube_algorithm.cc" "src/CMakeFiles/xplain.dir/core/cube_algorithm.cc.o" "gcc" "src/CMakeFiles/xplain.dir/core/cube_algorithm.cc.o.d"
  "/root/repo/src/core/degree.cc" "src/CMakeFiles/xplain.dir/core/degree.cc.o" "gcc" "src/CMakeFiles/xplain.dir/core/degree.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/xplain.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/xplain.dir/core/engine.cc.o.d"
  "/root/repo/src/core/explanation.cc" "src/CMakeFiles/xplain.dir/core/explanation.cc.o" "gcc" "src/CMakeFiles/xplain.dir/core/explanation.cc.o.d"
  "/root/repo/src/core/flatten.cc" "src/CMakeFiles/xplain.dir/core/flatten.cc.o" "gcc" "src/CMakeFiles/xplain.dir/core/flatten.cc.o.d"
  "/root/repo/src/core/intervention.cc" "src/CMakeFiles/xplain.dir/core/intervention.cc.o" "gcc" "src/CMakeFiles/xplain.dir/core/intervention.cc.o.d"
  "/root/repo/src/core/naive.cc" "src/CMakeFiles/xplain.dir/core/naive.cc.o" "gcc" "src/CMakeFiles/xplain.dir/core/naive.cc.o.d"
  "/root/repo/src/core/topk.cc" "src/CMakeFiles/xplain.dir/core/topk.cc.o" "gcc" "src/CMakeFiles/xplain.dir/core/topk.cc.o.d"
  "/root/repo/src/core/trends.cc" "src/CMakeFiles/xplain.dir/core/trends.cc.o" "gcc" "src/CMakeFiles/xplain.dir/core/trends.cc.o.d"
  "/root/repo/src/datagen/dblp.cc" "src/CMakeFiles/xplain.dir/datagen/dblp.cc.o" "gcc" "src/CMakeFiles/xplain.dir/datagen/dblp.cc.o.d"
  "/root/repo/src/datagen/natality.cc" "src/CMakeFiles/xplain.dir/datagen/natality.cc.o" "gcc" "src/CMakeFiles/xplain.dir/datagen/natality.cc.o.d"
  "/root/repo/src/datagen/random_db.cc" "src/CMakeFiles/xplain.dir/datagen/random_db.cc.o" "gcc" "src/CMakeFiles/xplain.dir/datagen/random_db.cc.o.d"
  "/root/repo/src/datagen/worstcase.cc" "src/CMakeFiles/xplain.dir/datagen/worstcase.cc.o" "gcc" "src/CMakeFiles/xplain.dir/datagen/worstcase.cc.o.d"
  "/root/repo/src/datalog/datalog.cc" "src/CMakeFiles/xplain.dir/datalog/datalog.cc.o" "gcc" "src/CMakeFiles/xplain.dir/datalog/datalog.cc.o.d"
  "/root/repo/src/datalog/program_p.cc" "src/CMakeFiles/xplain.dir/datalog/program_p.cc.o" "gcc" "src/CMakeFiles/xplain.dir/datalog/program_p.cc.o.d"
  "/root/repo/src/relational/aggregate.cc" "src/CMakeFiles/xplain.dir/relational/aggregate.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/aggregate.cc.o.d"
  "/root/repo/src/relational/column_cache.cc" "src/CMakeFiles/xplain.dir/relational/column_cache.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/column_cache.cc.o.d"
  "/root/repo/src/relational/csv.cc" "src/CMakeFiles/xplain.dir/relational/csv.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/csv.cc.o.d"
  "/root/repo/src/relational/cube.cc" "src/CMakeFiles/xplain.dir/relational/cube.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/cube.cc.o.d"
  "/root/repo/src/relational/database.cc" "src/CMakeFiles/xplain.dir/relational/database.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/database.cc.o.d"
  "/root/repo/src/relational/ddl.cc" "src/CMakeFiles/xplain.dir/relational/ddl.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/ddl.cc.o.d"
  "/root/repo/src/relational/expression.cc" "src/CMakeFiles/xplain.dir/relational/expression.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/expression.cc.o.d"
  "/root/repo/src/relational/join.cc" "src/CMakeFiles/xplain.dir/relational/join.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/join.cc.o.d"
  "/root/repo/src/relational/parser.cc" "src/CMakeFiles/xplain.dir/relational/parser.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/parser.cc.o.d"
  "/root/repo/src/relational/predicate.cc" "src/CMakeFiles/xplain.dir/relational/predicate.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/predicate.cc.o.d"
  "/root/repo/src/relational/query.cc" "src/CMakeFiles/xplain.dir/relational/query.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/query.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/xplain.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/xplain.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/storage.cc" "src/CMakeFiles/xplain.dir/relational/storage.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/storage.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/CMakeFiles/xplain.dir/relational/tuple.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/tuple.cc.o.d"
  "/root/repo/src/relational/type.cc" "src/CMakeFiles/xplain.dir/relational/type.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/type.cc.o.d"
  "/root/repo/src/relational/universal.cc" "src/CMakeFiles/xplain.dir/relational/universal.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/universal.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/xplain.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/xplain.dir/relational/value.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/xplain.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/xplain.dir/util/logging.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/xplain.dir/util/status.cc.o" "gcc" "src/CMakeFiles/xplain.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/xplain.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/xplain.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
