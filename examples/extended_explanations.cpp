// Demonstrates the paper's Section 6 extensions implemented in xplain:
//  (ii)  explanations with inequalities (ranges) and disjunctions,
//  (iii) the hybrid cube-evaluable degree,
//  (iv)  trend questions ("why is this series decreasing?") via the
//        regression-slope numerical query.
// All on the synthetic DBLP workload.

#include <iostream>

#include "core/candidates.h"
#include "core/engine.h"
#include "core/trends.h"
#include "datagen/dblp.h"
#include "relational/parser.h"

using namespace xplain;  // NOLINT: example brevity

namespace {

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  datagen::DblpOptions gen;
  gen.scale = 0.6;
  Database db = Unwrap(datagen::GenerateDblp(gen));
  ExplainEngine engine = Unwrap(ExplainEngine::Create(&db));
  UserQuestion bump = Unwrap(datagen::MakeDblpBumpQuestion(db));

  // --- (ii) range explanations over Publication.year. ---
  std::cout << "== Range explanations (Section 6(ii)) ==\n";
  ColumnRef year = Unwrap(db.ResolveColumn("Publication.year"));
  RangeCandidateOptions range_options;
  range_options.num_buckets = 5;
  std::vector<ConjunctivePredicate> ranges =
      Unwrap(GenerateRangeCandidates(engine.universal(), year,
                                     range_options));
  std::vector<DnfPredicate> range_candidates(ranges.begin(), ranges.end());
  std::vector<ScoredCandidate> scored_ranges = Unwrap(
      ScoreCandidatesExact(engine.intervention(), bump, range_candidates));
  for (size_t i = 0; i < scored_ranges.size() && i < 4; ++i) {
    std::cout << "  " << (i + 1) << ". "
              << scored_ranges[i].predicate.ToString(db)
              << "  mu_interv=" << scored_ranges[i].degree << "\n";
  }

  // --- (ii) disjunction explanations from the top equality cells. ---
  std::cout << "\n== Disjunction explanations (Section 6(ii)) ==\n";
  ExplainOptions explain;
  explain.top_k = 4;
  ExplainReport report = Unwrap(
      engine.Explain(bump, {"Author.name", "Author.inst"}, explain));
  std::vector<DnfPredicate> pairs = GenerateDisjunctionCandidates(
      report.table, DegreeKind::kIntervention, 4);
  std::vector<ScoredCandidate> scored_pairs =
      Unwrap(ScoreCandidatesExact(engine.intervention(), bump, pairs));
  for (size_t i = 0; i < scored_pairs.size() && i < 3; ++i) {
    std::cout << "  " << (i + 1) << ". "
              << scored_pairs[i].predicate.ToString(db)
              << "  mu_interv=" << scored_pairs[i].degree << "\n";
  }

  // --- (iii) the hybrid degree: cube-evaluable even when not additive. ---
  std::cout << "\n== Hybrid degree (Section 6(iii)) ==\n";
  ExplainOptions hybrid;
  hybrid.top_k = 4;
  hybrid.degree = DegreeKind::kHybrid;
  ExplainReport hybrid_report = Unwrap(
      engine.Explain(bump, {"Author.name", "Author.inst"}, hybrid));
  int rank = 1;
  for (const RankedExplanation& e : hybrid_report.explanations) {
    std::cout << "  " << rank++ << ". " << e.explanation.ToString(db)
              << "  mu_hybrid=" << e.degree << "\n";
  }

  // --- (iv) a trend question: why does the industrial series decline? ---
  std::cout << "\n== Trend question (Section 6(iv)) ==\n";
  SlopeQuestionSpec spec;
  spec.agg =
      AggregateSpec::CountDistinct(Unwrap(db.ResolveColumn(
          "Publication.pubid")));
  spec.time_column = year;
  spec.time_begin = 2004;
  spec.time_end = 2011;
  spec.window = 2;
  spec.base_where = Unwrap(ParseDnfPredicate(
      db, "Publication.venue = 'SIGMOD' AND Author.dom = 'com'"));
  spec.direction = Direction::kLow;
  UserQuestion slope_question = Unwrap(MakeSlopeQuestion(db, spec));
  double slope = Unwrap(slope_question.query.Evaluate(db));
  std::cout << "  slope of industrial SIGMOD counts 2004-2011: " << slope
            << " papers/year (declining)\n";
  ExplainOptions slope_explain;
  slope_explain.top_k = 3;
  ExplainReport slope_report = Unwrap(
      engine.Explain(slope_question, {"Author.inst"}, slope_explain));
  rank = 1;
  for (const RankedExplanation& e : slope_report.explanations) {
    std::cout << "  " << rank++ << ". " << e.explanation.ToString(db)
              << "  degree=" << e.degree << "\n";
  }
  std::cout << "  (removing the classic labs flattens the decline)\n";
  return 0;
}
