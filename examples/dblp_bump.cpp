// Reproduces the paper's headline scenario (Figures 1 and 2): the number
// of industrial SIGMOD papers stops growing around 2000-2007 while the
// academic count keeps rising. We generate the synthetic DBLP workload,
// print the five-year-window series behind Figure 1, then ask the engine
// to explain the bump and print a Figure-2-style ranking.

#include <iomanip>
#include <iostream>

#include "core/engine.h"
#include "datagen/dblp.h"
#include "relational/parser.h"

using namespace xplain;  // NOLINT: example brevity

namespace {

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

double CountPubs(const Database& db, const UniversalRelation& u,
                 const std::string& dom, int from, int to) {
  AggregateQuery q;
  q.agg = AggregateSpec::CountDistinct(
      Unwrap(db.ResolveColumn("Publication.pubid")));
  q.where = Unwrap(ParsePredicate(
      db, "Publication.venue = 'SIGMOD' AND Author.dom = '" + dom +
              "' AND Publication.year >= " + std::to_string(from) +
              " AND Publication.year <= " + std::to_string(to)));
  return EvaluateAggregate(u, q.agg, &q.where).AsNumeric();
}

}  // namespace

int main() {
  datagen::DblpOptions options;
  options.scale = 1.0;
  Database db = Unwrap(datagen::GenerateDblp(options));
  UniversalRelation u = Unwrap(UniversalRelation::Build(db));
  std::cout << "Synthetic DBLP: " << db.RelationByName("Author").NumRows()
            << " authors, " << db.RelationByName("Authored").NumRows()
            << " authorships, " << db.RelationByName("Publication").NumRows()
            << " publications\n\n";

  // Figure 1: SIGMOD publications per five-year window, com vs edu.
  std::cout << "window        com    edu   (distinct SIGMOD papers)\n";
  for (int start = options.year_begin; start + 4 <= options.year_end;
       start += 3) {
    double com = CountPubs(db, u, "com", start, start + 4);
    double edu = CountPubs(db, u, "edu", start, start + 4);
    std::cout << start << "-" << (start + 4) << "   " << std::setw(6) << com
              << " " << std::setw(6) << edu << "\n";
  }
  std::cout << "\n";

  // Figure 2: top explanations for the bump.
  UserQuestion question = Unwrap(datagen::MakeDblpBumpQuestion(db));
  ExplainEngine engine = Unwrap(ExplainEngine::Create(&db));
  ExplainOptions explain;
  explain.top_k = 9;
  ExplainReport report = Unwrap(
      engine.Explain(question, {"Author.name", "Author.inst"}, explain));
  std::cout << "User question: (Q, high) with Q = (q1/q2) / (q3/q4)\n"
            << "Top explanations by intervention (cf. paper Figure 2):\n"
            << report.ToString(db);
  return 0;
}
