// Demonstrates the causal machinery of Section 3: schema and data causal
// graphs (Figure 6), convergence bounds (Props. 3.5/3.10/3.11), and the
// Example 3.7 worst case where program P needs a linear number of
// iterations.

#include <iostream>

#include "core/causal_graph.h"
#include "core/intervention.h"
#include "datagen/worstcase.h"
#include "relational/parser.h"

using namespace xplain;  // NOLINT: example brevity

namespace {

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

Database BuildFigure3() {
  auto author_schema = RelationSchema::Create("Author",
                                              {{"id", DataType::kString},
                                               {"name", DataType::kString}},
                                              {"id"});
  auto authored_schema = RelationSchema::Create(
      "Authored", {{"id", DataType::kString}, {"pubid", DataType::kString}},
      {"id", "pubid"});
  auto pub_schema = RelationSchema::Create(
      "Publication",
      {{"pubid", DataType::kString}, {"year", DataType::kInt64}}, {"pubid"});
  Relation author(std::move(*author_schema));
  Relation authored(std::move(*authored_schema));
  Relation publication(std::move(*pub_schema));
  author.AppendUnchecked({Value::Str("A1"), Value::Str("JG")});
  author.AppendUnchecked({Value::Str("A2"), Value::Str("RR")});
  author.AppendUnchecked({Value::Str("A3"), Value::Str("CM")});
  for (auto [a, p] : {std::pair{"A1", "P1"}, {"A2", "P1"}, {"A1", "P2"},
                      {"A3", "P2"}, {"A2", "P3"}, {"A3", "P3"}}) {
    authored.AppendUnchecked({Value::Str(a), Value::Str(p)});
  }
  publication.AppendUnchecked({Value::Str("P1"), Value::Int(2001)});
  publication.AppendUnchecked({Value::Str("P2"), Value::Int(2011)});
  publication.AppendUnchecked({Value::Str("P3"), Value::Int(2001)});
  Database db;
  XPLAIN_CHECK(db.AddRelation(std::move(author)).ok());
  XPLAIN_CHECK(db.AddRelation(std::move(authored)).ok());
  XPLAIN_CHECK(db.AddRelation(std::move(publication)).ok());
  ForeignKey to_author{"Authored", {"id"}, "Author", {"id"},
                       ForeignKeyKind::kStandard};
  ForeignKey to_pub{"Authored", {"pubid"}, "Publication", {"pubid"},
                    ForeignKeyKind::kBackAndForth};
  XPLAIN_CHECK(db.AddForeignKey(to_author).ok());
  XPLAIN_CHECK(db.AddForeignKey(to_pub).ok());
  return db;
}

}  // namespace

int main() {
  // --- Figure 6a: the schema causal graph of the running example. ---
  Database db = BuildFigure3();
  SchemaCausalGraph schema_graph(&db);
  std::cout << "Schema causal graph (Figure 6a, graphviz):\n"
            << schema_graph.ToDot() << "\n";
  std::cout << "simple=" << schema_graph.IsSimple()
            << " acyclic=" << schema_graph.IsAcyclicSchema()
            << " back-and-forth=" << schema_graph.NumBackAndForth() << "\n";
  if (auto bound = schema_graph.StaticConvergenceBound()) {
    std::cout << "Prop 3.11 static bound on program P: " << *bound
              << " iterations (2s+2)\n\n";
  }

  // --- Figure 6b: the data causal graph. ---
  UniversalRelation u = Unwrap(UniversalRelation::Build(db));
  DataCausalGraph data_graph = Unwrap(DataCausalGraph::Build(u));
  std::cout << "Data causal graph (Figure 6b, graphviz):\n"
            << data_graph.ToDot(db) << "\n";

  // Causal length from the Example 2.8 seed {s1}.
  DeltaSet seeds = db.EmptyDelta();
  seeds[*db.RelationIndex("Authored")].Set(0);
  std::cout << "Max causal length q from seed s1: "
            << Unwrap(data_graph.MaxCausalLengthFromSeeds(seeds))
            << "  (Prop 3.10 bound: 2q+2)\n\n";

  // --- Example 3.7: recursion is really needed. ---
  std::cout << "Example 3.7 worst case (iterations grow linearly):\n";
  std::cout << "    p    rows  iterations\n";
  for (int p : {1, 2, 4, 8, 16, 32}) {
    datagen::WorstCaseInstance wc =
        Unwrap(datagen::GenerateWorstCaseChain(p));
    UniversalRelation wu = Unwrap(UniversalRelation::Build(wc.db));
    InterventionEngine engine(&wu);
    InterventionResult result = Unwrap(engine.Compute(wc.phi));
    std::cout << "  " << p << "    " << wc.total_rows << "    "
              << result.iterations << "\n";
  }
  return 0;
}
