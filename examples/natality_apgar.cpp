// Reproduces the paper's Section 5.1 natality study on the synthetic
// stand-in dataset: prints the Figure 7 contingency tables, then the top-5
// explanations by intervention (Figure 10) and top-3 by aggravation
// (Figure 11) for both Q_Race and Q_Marital.

#include <iostream>

#include "core/engine.h"
#include "datagen/natality.h"
#include "relational/parser.h"

using namespace xplain;  // NOLINT: example brevity

namespace {

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

double Count(const Database& db, const UniversalRelation& u,
             const std::string& where) {
  DnfPredicate phi = Unwrap(ParsePredicate(db, where));
  return EvaluateAggregate(u, AggregateSpec::CountStar(), &phi).AsNumeric();
}

void RunQuestion(const Database& db, ExplainEngine& engine,
                 const UserQuestion& question, const char* title,
                 const std::vector<std::string>& attrs) {
  std::cout << "==== " << title << " ====\n";
  ExplainOptions interv;
  interv.top_k = 5;
  interv.min_support = 500;
  interv.minimality = MinimalityStrategy::kAppend;
  ExplainReport report = Unwrap(engine.Explain(question, attrs, interv));
  std::cout << "Top-5 (minimal) explanations by intervention:\n"
            << report.ToString(db);

  ExplainOptions aggr = interv;
  aggr.top_k = 3;
  aggr.degree = DegreeKind::kAggravation;
  ExplainReport aggr_report = Unwrap(engine.Explain(question, attrs, aggr));
  std::cout << "Top-3 (minimal) explanations by aggravation:\n"
            << aggr_report.ToString(db) << "\n";
}

}  // namespace

int main() {
  datagen::NatalityOptions options;
  options.num_rows = 200000;
  Database db = Unwrap(datagen::GenerateNatality(options));
  UniversalRelation u = Unwrap(UniversalRelation::Build(db));
  std::cout << "Synthetic natality dataset: " << db.TotalRows()
            << " births\n\n";

  // Figure 7: contingency tables.
  std::cout << "AP      White    Black   AmInd   Asian\n";
  for (const char* ap : {"poor", "good"}) {
    std::cout << ap << "  ";
    for (const char* race : {"White", "Black", "AmInd", "Asian"}) {
      std::cout << "  " << Count(db, u,
                                 std::string("Birth.ap = '") + ap +
                                     "' AND Birth.race = '" + race + "'");
    }
    std::cout << "\n";
  }
  std::cout << "\nAP      married  unmarried\n";
  for (const char* ap : {"poor", "good"}) {
    std::cout << ap << "  ";
    for (const char* m : {"married", "unmarried"}) {
      std::cout << "  " << Count(db, u,
                                 std::string("Birth.ap = '") + ap +
                                     "' AND Birth.marital = '" + m + "'");
    }
    std::cout << "\n";
  }
  std::cout << "\n";

  ExplainEngine engine = Unwrap(ExplainEngine::Create(&db));
  std::vector<std::string> race_attrs = {"Birth.age", "Birth.tobacco",
                                         "Birth.prenatal", "Birth.education",
                                         "Birth.marital"};
  std::vector<std::string> marital_attrs = {"Birth.age", "Birth.tobacco",
                                            "Birth.prenatal",
                                            "Birth.education", "Birth.race"};
  RunQuestion(db, engine, Unwrap(datagen::MakeNatalityQRace(db)),
              "Q_Race: why is good/poor APGAR ratio high for Asian mothers?",
              race_attrs);
  RunQuestion(db, engine, Unwrap(datagen::MakeNatalityQMarital(db)),
              "Q_Marital: why is the ratio higher for married mothers?",
              marital_attrs);
  return 0;
}
