// Quickstart: build the paper's running example (Figure 3), ask why the
// ratio of industrial to academic SIGMOD papers is high, and print the
// ranked explanations -- plus the intervention of Example 2.8, computed
// step by step.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "core/engine.h"
#include "relational/parser.h"

using namespace xplain;  // NOLINT: example brevity

namespace {

Database BuildFigure3() {
  auto author_schema = RelationSchema::Create("Author",
                                              {{"id", DataType::kString},
                                               {"name", DataType::kString},
                                               {"inst", DataType::kString},
                                               {"dom", DataType::kString}},
                                              {"id"});
  auto authored_schema = RelationSchema::Create(
      "Authored", {{"id", DataType::kString}, {"pubid", DataType::kString}},
      {"id", "pubid"});
  auto pub_schema = RelationSchema::Create("Publication",
                                           {{"pubid", DataType::kString},
                                            {"year", DataType::kInt64},
                                            {"venue", DataType::kString}},
                                           {"pubid"});
  Relation author(std::move(*author_schema));
  Relation authored(std::move(*authored_schema));
  Relation publication(std::move(*pub_schema));
  author.AppendUnchecked({Value::Str("A1"), Value::Str("JG"),
                          Value::Str("C.edu"), Value::Str("edu")});
  author.AppendUnchecked({Value::Str("A2"), Value::Str("RR"),
                          Value::Str("M.com"), Value::Str("com")});
  author.AppendUnchecked({Value::Str("A3"), Value::Str("CM"),
                          Value::Str("I.com"), Value::Str("com")});
  for (auto [a, p] : {std::pair{"A1", "P1"}, {"A2", "P1"}, {"A1", "P2"},
                      {"A3", "P2"}, {"A2", "P3"}, {"A3", "P3"}}) {
    authored.AppendUnchecked({Value::Str(a), Value::Str(p)});
  }
  publication.AppendUnchecked(
      {Value::Str("P1"), Value::Int(2001), Value::Str("SIGMOD")});
  publication.AppendUnchecked(
      {Value::Str("P2"), Value::Int(2011), Value::Str("VLDB")});
  publication.AppendUnchecked(
      {Value::Str("P3"), Value::Int(2001), Value::Str("SIGMOD")});

  Database db;
  XPLAIN_CHECK(db.AddRelation(std::move(author)).ok());
  XPLAIN_CHECK(db.AddRelation(std::move(authored)).ok());
  XPLAIN_CHECK(db.AddRelation(std::move(publication)).ok());

  // The paper's Eq. (2): an author causes her papers (back-and-forth key
  // on pubid); a paper does not cause its authors.
  ForeignKey to_author{"Authored", {"id"}, "Author", {"id"},
                       ForeignKeyKind::kStandard};
  ForeignKey to_pub{"Authored", {"pubid"}, "Publication", {"pubid"},
                    ForeignKeyKind::kBackAndForth};
  XPLAIN_CHECK(db.AddForeignKey(to_author).ok());
  XPLAIN_CHECK(db.AddForeignKey(to_pub).ok());
  return db;
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  Database db = BuildFigure3();
  std::cout << db.ToString() << "\n\n";

  // --- Part 1: the intervention of Example 2.8. ---
  UniversalRelation universal = Unwrap(UniversalRelation::Build(db));
  std::cout << universal.ToString() << "\n\n";

  InterventionEngine interventions(&universal);
  ConjunctivePredicate phi = Unwrap(
      ParsePredicate(db, "Author.name = 'JG' AND Publication.year = 2001"));
  InterventionResult result = Unwrap(interventions.Compute(phi));
  std::cout << "Intervention for " << phi.ToString(db) << " (converged in "
            << result.iterations << " iterations):\n";
  for (int r = 0; r < db.num_relations(); ++r) {
    std::cout << "  Delta_" << db.relation(r).name() << " = {";
    bool first = true;
    for (size_t row : result.delta[r].ToRows()) {
      if (!first) std::cout << ", ";
      std::cout << TupleToString(db.relation(r).row(row));
      first = false;
    }
    std::cout << "}\n";
  }
  std::cout << "\n";

  // --- Part 2: a full explanation query through the engine facade. ---
  // Why is (#com SIGMOD papers) / (#edu SIGMOD papers) so high?
  AggregateQuery q1, q2;
  q1.name = "q1";
  q1.agg = AggregateSpec::CountDistinct(
      Unwrap(db.ResolveColumn("Publication.pubid")));
  q1.where = Unwrap(ParsePredicate(
      db, "Author.dom = 'com' AND Publication.venue = 'SIGMOD'"));
  q2 = q1;
  q2.name = "q2";
  q2.where = Unwrap(ParsePredicate(
      db, "Author.dom = 'edu' AND Publication.venue = 'SIGMOD'"));
  UserQuestion question;
  question.query = Unwrap(NumericalQuery::Create(
      {q1, q2}, Unwrap(ParseExpression("q1 / q2", {"q1", "q2"}))));
  question.direction = Direction::kHigh;

  ExplainEngine engine = Unwrap(ExplainEngine::Create(&db));
  ExplainOptions options;
  options.top_k = 5;
  ExplainReport report = Unwrap(engine.Explain(
      question, {"Author.name", "Publication.year"}, options));
  std::cout << "Why is #com/#edu SIGMOD papers so high?\n"
            << report.ToString(db);
  return 0;
}
